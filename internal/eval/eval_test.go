package eval

import (
	"fmt"
	"math"
	"testing"

	"eyewnder/internal/detector"
	"eyewnder/internal/taxonomy"
)

func TestBuildTreeRouting(t *testing.T) {
	obs := []Observation{
		// Targeted branch: one per leaf.
		{AdKey: "a", Class: detector.Targeted, SeenByCrawler: true},                // FP(CR)
		{AdKey: "b", Class: detector.Targeted, SemanticOverlap: true},              // TP(CB)
		{AdKey: "c", Class: detector.Targeted, F8Labeled: true, F8Targeted: true},  // TP(F8)
		{AdKey: "d", Class: detector.Targeted, F8Labeled: true, F8Targeted: false}, // FP(F8)
		{AdKey: "e", Class: detector.Targeted},                                     // UNKNOWN
		// Non-targeted branch: one per leaf.
		{AdKey: "f", Class: detector.NonTargeted, SeenByCrawler: true},                // TN(CR)
		{AdKey: "g", Class: detector.NonTargeted, SemanticOverlap: true},              // FN(CB)
		{AdKey: "h", Class: detector.NonTargeted, F8Labeled: true, F8Targeted: false}, // TN(F8)
		{AdKey: "i", Class: detector.NonTargeted, F8Labeled: true, F8Targeted: true},  // FN(F8)
		{AdKey: "j", Class: detector.NonTargeted},                                     // UNKNOWN
		// Below minimum data.
		{AdKey: "k", Class: detector.Unknown},
	}
	tree := BuildTree(obs)
	if tree.Total != 11 || tree.Skipped != 1 {
		t.Fatalf("Total/Skipped = %d/%d", tree.Total, tree.Skipped)
	}
	tb := tree.Targeted
	if tb.N != 5 || tb.CR != 1 || tb.CB != 1 || tb.F8Agree != 1 || tb.F8Disagree != 1 || tb.Unknown != 1 {
		t.Fatalf("targeted branch = %+v", tb)
	}
	nb := tree.NonTargeted
	if nb.N != 5 || nb.CR != 1 || nb.CB != 1 || nb.F8Agree != 1 || nb.F8Disagree != 1 || nb.Unknown != 1 {
		t.Fatalf("non-targeted branch = %+v", nb)
	}
}

func TestCrawlerPrecedesOverlap(t *testing.T) {
	// An ad seen by the crawler lands in the CR leaf regardless of other
	// evidence — the figure checks CR first.
	obs := []Observation{{
		AdKey: "x", Class: detector.Targeted,
		SeenByCrawler: true, SemanticOverlap: true, F8Labeled: true, F8Targeted: true,
	}}
	tree := BuildTree(obs)
	if tree.Targeted.CR != 1 || tree.Targeted.CB != 0 || tree.Targeted.F8Agree != 0 {
		t.Fatalf("branch = %+v", tree.Targeted)
	}
}

func TestRatesMatchHandComputation(t *testing.T) {
	// 10 targeted: 2 CR, 2 overlap/CB, 3 F8-targeted, 1 F8-static, 2 unknown.
	var obs []Observation
	add := func(n int, o Observation) {
		for i := 0; i < n; i++ {
			o.AdKey = fmt.Sprintf("ad-%d-%d", len(obs), i)
			obs = append(obs, o)
		}
	}
	add(2, Observation{Class: detector.Targeted, SeenByCrawler: true})
	add(2, Observation{Class: detector.Targeted, SemanticOverlap: true})
	add(3, Observation{Class: detector.Targeted, F8Labeled: true, F8Targeted: true})
	add(1, Observation{Class: detector.Targeted, F8Labeled: true})
	add(2, Observation{Class: detector.Targeted})
	tree := BuildTree(obs)
	r := tree.Rates()
	if math.Abs(r.FPCRPct-20) > 1e-9 { // 2/10
		t.Fatalf("FPCR = %v", r.FPCRPct)
	}
	if math.Abs(r.TPCBPct-25) > 1e-9 { // 2/8
		t.Fatalf("TPCB = %v", r.TPCBPct)
	}
	if math.Abs(r.TPF8Pct-75) > 1e-9 { // 3/4 labeled
		t.Fatalf("TPF8 = %v", r.TPF8Pct)
	}
	if math.Abs(r.FPF8Pct-25) > 1e-9 { // 1/4 labeled
		t.Fatalf("FPF8 = %v", r.FPF8Pct)
	}
	if math.Abs(r.UnknownTargetedPct-100.0/3.0) > 1e-9 { // 2/6 no-overlap
		t.Fatalf("UnknownTargeted = %v", r.UnknownTargetedPct)
	}
}

func TestRatesEmptyTree(t *testing.T) {
	r := BuildTree(nil).Rates()
	if r.FPCRPct != 0 || r.TNCRPct != 0 || r.TPF8Pct != 0 {
		t.Fatalf("empty rates = %+v", r)
	}
}

type fakeResolver struct {
	retargeted map[string]bool
	indirect   map[string]bool
	confirmTN  bool
}

func (f *fakeResolver) IsRetargeted(k string) bool              { return f.retargeted[k] }
func (f *fakeResolver) IsIndirectOBA(k string, u int) bool      { return f.indirect[k] }
func (f *fakeResolver) InspectNonTargeted(k string, u int) bool { return f.confirmTN }

func TestResolveUnknowns(t *testing.T) {
	obs := []Observation{
		{AdKey: "rt", Class: detector.Targeted},                      // retargeted → TP
		{AdKey: "ind", Class: detector.Targeted},                     // indirect → TP
		{AdKey: "fp", Class: detector.Targeted},                      // neither → FP
		{AdKey: "cr", Class: detector.Targeted, SeenByCrawler: true}, // not unknown
		{AdKey: "nt1", Class: detector.NonTargeted},
		{AdKey: "nt2", Class: detector.NonTargeted},
		{AdKey: "nt3", Class: detector.NonTargeted},
	}
	r := &fakeResolver{
		retargeted: map[string]bool{"rt": true},
		indirect:   map[string]bool{"ind": true},
		confirmTN:  true,
	}
	res := ResolveUnknowns(obs, r, 2)
	if res.LikelyTP != 2 || res.LikelyFP != 1 {
		t.Fatalf("resolution = %+v", res)
	}
	if res.SampledNonTargeted != 2 || res.LikelyTN != 2 || res.LikelyFN != 0 {
		t.Fatalf("nt sample = %+v", res)
	}
}

func TestSummarize(t *testing.T) {
	// Targeted: 10 total, CB 2 + F8 3 + resolved 3 = 8 TP → 80%.
	tree := &Tree{
		Targeted:    Branch{N: 10, CR: 1, CB: 2, F8Agree: 3, F8Disagree: 1, Unknown: 3},
		NonTargeted: Branch{N: 100, CR: 30, CB: 5, F8Agree: 5, F8Disagree: 5, Unknown: 55},
	}
	res := Resolution{LikelyTP: 3, LikelyFP: 0, SampledNonTargeted: 10, LikelyTN: 8, LikelyFN: 2}
	s := Summarize(tree, res)
	if math.Abs(s.LikelyTPRate-0.8) > 1e-9 {
		t.Fatalf("TP rate = %v", s.LikelyTPRate)
	}
	// TN: (30 + 5 + 0.8*55)/100 = 0.79.
	if math.Abs(s.LikelyTNRate-0.79) > 1e-9 {
		t.Fatalf("TN rate = %v", s.LikelyTNRate)
	}
	if math.Abs(s.HighConfidenceTNRate-0.3) > 1e-9 {
		t.Fatalf("high-confidence TN = %v", s.HighConfidenceTNRate)
	}
	// Degenerate tree.
	empty := Summarize(&Tree{}, Resolution{})
	if empty.LikelyTPRate != 0 || empty.LikelyTNRate != 0 {
		t.Fatalf("empty summary = %+v", empty)
	}
}

func TestTopicEnrichmentDetectsIndirectAudience(t *testing.T) {
	// Population of 200: topic Computers at 20% base rate. An ad for
	// Dating (no overlap with Computers) received overwhelmingly by
	// computer folk must register as indirect OBA.
	interests := map[int][]taxonomy.Topic{}
	for u := 0; u < 200; u++ {
		if u%5 == 0 {
			interests[u] = []taxonomy.Topic{taxonomy.Computers}
		} else {
			interests[u] = []taxonomy.Topic{taxonomy.Travel}
		}
	}
	var receivers []int
	for u := 0; u < 200; u += 5 { // all 40 computer users
		receivers = append(receivers, u)
	}
	if !TopicEnrichment(receivers, interests, 200, taxonomy.Dating, 0.01) {
		t.Fatal("enrichment missed a pure computer-audience dating ad")
	}
}

func TestTopicEnrichmentIgnoresOverlappingTopics(t *testing.T) {
	// Same audience, but the ad is for Electronics — that's DIRECT
	// targeting (overlap with Computers), so the indirect test must not
	// fire off the computers enrichment.
	interests := map[int][]taxonomy.Topic{}
	for u := 0; u < 200; u++ {
		if u%5 == 0 {
			interests[u] = []taxonomy.Topic{taxonomy.Computers}
		} else {
			interests[u] = []taxonomy.Topic{taxonomy.Travel}
		}
	}
	var receivers []int
	for u := 0; u < 200; u += 5 {
		receivers = append(receivers, u)
	}
	if TopicEnrichment(receivers, interests, 200, taxonomy.Electronics, 0.01) {
		t.Fatal("enrichment fired on a semantically overlapping topic")
	}
}

func TestTopicEnrichmentRandomAudienceNegative(t *testing.T) {
	// Receivers drawn uniformly: no topic should be enriched.
	interests := map[int][]taxonomy.Topic{}
	for u := 0; u < 300; u++ {
		interests[u] = []taxonomy.Topic{taxonomy.Topic(u % taxonomy.Count)}
	}
	// Take one receiver per topic so receiver rates equal base rates.
	var receivers []int
	for u := 0; u < taxonomy.Count; u++ {
		receivers = append(receivers, u)
	}
	if TopicEnrichment(receivers, interests, 300, taxonomy.Dating, 0.001) {
		t.Fatal("enrichment fired on a uniform audience")
	}
}

func TestTopicEnrichmentDegenerate(t *testing.T) {
	if TopicEnrichment(nil, nil, 0, taxonomy.Dating, 0.01) {
		t.Fatal("empty inputs enriched")
	}
	if TopicEnrichment([]int{1, 2}, map[int][]taxonomy.Topic{}, 10, taxonomy.Dating, 0.01) {
		t.Fatal("tiny audience enriched")
	}
}
