// Package experiments contains the drivers that regenerate every table
// and figure of the paper's evaluation (Section 7 and Section 8). Each
// experiment is a pure function from a configuration to a typed result,
// so the cmd binaries print them, the root-level benchmarks time them,
// and the tests assert the paper's qualitative shape on them.
package experiments

import (
	"fmt"

	"eyewnder/internal/adsim"
	"eyewnder/internal/detector"
)

// Confusion tallies detector verdicts against simulation ground truth
// over (user, ad) pairs.
type Confusion struct {
	TP, FP, TN, FN int
	// Unknown counts pairs the minimum-data rule refused to classify.
	Unknown int
}

// Classified returns the number of classified pairs.
func (c Confusion) Classified() int { return c.TP + c.FP + c.TN + c.FN }

// FNRate is FN / (TP + FN): the share of truly targeted ads the detector
// missed — the y-axis of Figure 3.
func (c Confusion) FNRate() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.FN) / float64(c.TP+c.FN)
}

// FPRate is FP / (FP + TN): truly non-targeted ads flagged as targeted —
// the quantity Section 7.2.2 bounds below 2%.
func (c Confusion) FPRate() float64 {
	if c.FP+c.TN == 0 {
		return 0
	}
	return float64(c.FP) / float64(c.FP+c.TN)
}

// String implements fmt.Stringer.
func (c Confusion) String() string {
	return fmt.Sprintf("TP=%d FP=%d TN=%d FN=%d unknown=%d (FN%%=%.1f FP%%=%.2f)",
		c.TP, c.FP, c.TN, c.FN, c.Unknown, 100*c.FNRate(), 100*c.FPRate())
}

// EvaluateWeek runs the count-based algorithm over one simulated week of
// cleartext counters (the controlled-simulation path of Section 7.2: the
// privacy protocol is evaluated separately and leaves the statistics
// essentially unchanged — see the Fig2 experiment).
func EvaluateWeek(sim *adsim.Simulator, res *adsim.Result, week int,
	domEst, userEst detector.Estimator, minDomains int) Confusion {

	counters := adsim.Count(res.Impressions, map[int]bool{week: true})
	usersTh := detector.UsersThreshold(counters.UserCountsDistribution(), userEst)

	var conf Confusion
	for user := range counters.DomainsPerUserAd {
		if counters.ActiveDomains(user) < minDomains {
			conf.Unknown += len(counters.DomainsPerUserAd[user])
			continue
		}
		domTh := domEst.Threshold(counters.DomainCountsDistribution(user))
		for _, ad := range counters.AdsSeenBy(user) {
			domains := float64(counters.DomainCount(user, ad))
			users := float64(counters.UserCount(ad))
			classifiedTargeted := domains >= domTh && users <= usersTh
			truth := sim.Campaign(ad).Kind.IsTargeted()
			switch {
			case classifiedTargeted && truth:
				conf.TP++
			case classifiedTargeted && !truth:
				conf.FP++
			case !classifiedTargeted && !truth:
				conf.TN++
			default:
				conf.FN++
			}
		}
	}
	return conf
}
