// Package oprf implements the RSA-based oblivious pseudo-random function
// of Jarecki and Liu that eyeWnder uses to map ad URLs to ad IDs
// (Section 6, "OPRF").
//
// The oprf-server holds an RSA triple (N, d, e) and publishes (N, e). For
// an ad URL x the client computes the blinded request
//
//	x' = H(x) · r^e  mod N
//
// for a fresh random r; the server answers y = (x')^d mod N; the client
// unblinds y' = y · r⁻¹ = H(x)^d mod N and outputs the ad ID
//
//	F(k, x) = G(H(x)^d)
//
// where H hashes strings into Z_N and G hashes group elements to l output
// bytes. The server learns nothing about x (the request is uniformly
// random in Z_N*), the client learns nothing about d beyond the single
// evaluation, and without d nobody can relate an ad ID back to its URL —
// which is exactly the property the back-end must not have.
//
// The client verifies each response (y'^e ≡ H(x) mod N), so a misbehaving
// server cannot silently corrupt the ad-ID mapping.
//
// MultiEval composes several independent OPRF servers by XOR, the
// distributed-trust deployment sketched in footnote 4 of the paper.
package oprf

import (
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"io"
	"math/big"
)

// OutputSize is the ad-ID length l in bytes produced by G.
const OutputSize = 32

// Errors returned by the package.
var (
	ErrVerifyFailed = errors.New("oprf: server response failed verification")
	ErrBadElement   = errors.New("oprf: element outside Z_N")
	ErrKeyTooSmall  = errors.New("oprf: modulus below 1024 bits")
)

// Server holds the RSA secret key and evaluates blinded requests.
type Server struct {
	key *rsa.PrivateKey
}

// NewServer generates a fresh RSA key of the given modulus size (bits) and
// returns the server. The paper's deployment uses 1024-bit keys; 2048 is
// the recommended modern default.
func NewServer(bits int) (*Server, error) {
	if bits < 1024 {
		return nil, ErrKeyTooSmall
	}
	key, err := rsa.GenerateKey(rand.Reader, bits)
	if err != nil {
		return nil, err
	}
	return &Server{key: key}, nil
}

// NewServerFromKey wraps an existing RSA key (used by tests and by
// deployments that persist the oprf key). A nil key is rejected like an
// undersized one: Go 1.24+ refuses to generate sub-1024-bit keys, so
// callers probing small keys hold a nil *rsa.PrivateKey.
func NewServerFromKey(key *rsa.PrivateKey) (*Server, error) {
	if key == nil || key.N == nil || key.N.BitLen() < 1024 {
		return nil, ErrKeyTooSmall
	}
	return &Server{key: key}, nil
}

// PublicKey returns the public parameters (N, e) that clients need.
func (s *Server) PublicKey() PublicKey {
	return PublicKey{N: new(big.Int).Set(s.key.N), E: s.key.E}
}

// Evaluate answers one blinded request: y = x'^d mod N.
func (s *Server) Evaluate(blinded *big.Int) (*big.Int, error) {
	if blinded.Sign() <= 0 || blinded.Cmp(s.key.N) >= 0 {
		return nil, ErrBadElement
	}
	return new(big.Int).Exp(blinded, s.key.D, s.key.N), nil
}

// EvaluateBatch answers a batch of blinded requests in order.
func (s *Server) EvaluateBatch(blinded []*big.Int) ([]*big.Int, error) {
	out := make([]*big.Int, len(blinded))
	for i, b := range blinded {
		y, err := s.Evaluate(b)
		if err != nil {
			return nil, err
		}
		out[i] = y
	}
	return out, nil
}

// Direct computes F(k, x) = G(H(x)^d) without blinding. Only the key
// holder can do this; tests use it as the reference output.
func (s *Server) Direct(x []byte) []byte {
	hx := hashToZN(x, s.key.N)
	y := new(big.Int).Exp(hx, s.key.D, s.key.N)
	return finalize(y, s.key.N)
}

// PublicKey is the public half of the OPRF key.
type PublicKey struct {
	N *big.Int
	E int
}

// Client performs the blinding side of the protocol.
type Client struct {
	pub  PublicKey
	rand io.Reader
}

// NewClient returns a client for the given server public key. If rng is
// nil, crypto/rand is used.
func NewClient(pub PublicKey, rng io.Reader) *Client {
	if rng == nil {
		rng = rand.Reader
	}
	return &Client{pub: pub, rand: rng}
}

// Request is the client-side state for one in-flight evaluation.
type Request struct {
	// Blinded is the value x' = H(x)·r^e mod N to send to the server.
	Blinded *big.Int
	x       []byte
	rInv    *big.Int
	hx      *big.Int
}

// Blind prepares a blinded request for input x.
func (c *Client) Blind(x []byte) (*Request, error) {
	n := c.pub.N
	hx := hashToZN(x, n)
	// Draw r uniform in Z_N*, keeping its inverse for unblinding.
	var r, rInv *big.Int
	for {
		var err error
		r, err = rand.Int(c.rand, n)
		if err != nil {
			return nil, err
		}
		if r.Sign() == 0 {
			continue
		}
		rInv = new(big.Int).ModInverse(r, n)
		if rInv != nil {
			break
		}
	}
	re := new(big.Int).Exp(r, big.NewInt(int64(c.pub.E)), n)
	blinded := re.Mul(re, hx)
	blinded.Mod(blinded, n)
	return &Request{Blinded: blinded, x: x, rInv: rInv, hx: hx}, nil
}

// Finalize unblinds the server's answer, verifies it against H(x), and
// returns the OutputSize-byte ad ID.
func (c *Client) Finalize(req *Request, response *big.Int) ([]byte, error) {
	n := c.pub.N
	if response.Sign() <= 0 || response.Cmp(n) >= 0 {
		return nil, ErrBadElement
	}
	y := new(big.Int).Mul(response, req.rInv)
	y.Mod(y, n)
	// Verify: y^e must equal H(x) mod N.
	check := new(big.Int).Exp(y, big.NewInt(int64(c.pub.E)), n)
	if check.Cmp(req.hx) != 0 {
		return nil, ErrVerifyFailed
	}
	return finalize(y, n), nil
}

// MultiEval XORs the outputs of several already-computed evaluations of
// the same input under independent keys, implementing the multi-server
// trust split of footnote 4. It errors if the outputs disagree in length.
func MultiEval(outputs ...[]byte) ([]byte, error) {
	if len(outputs) == 0 {
		return nil, errors.New("oprf: no outputs to combine")
	}
	out := make([]byte, len(outputs[0]))
	copy(out, outputs[0])
	for _, o := range outputs[1:] {
		if len(o) != len(out) {
			return nil, errors.New("oprf: output length mismatch")
		}
		for i := range out {
			out[i] ^= o[i]
		}
	}
	return out, nil
}

// hashToZN maps an arbitrary byte string into [0, N) by expanding SHA-256
// with a counter until the byte length covers N, then reducing mod N.
// The 2^-|excess| bias from the reduction is negligible because we expand
// 128 bits beyond |N|.
func hashToZN(x []byte, n *big.Int) *big.Int {
	byteLen := (n.BitLen() + 7) / 8
	need := byteLen + 16
	buf := make([]byte, 0, need+sha256.Size)
	var ctr [4]byte
	for i := 0; len(buf) < need; i++ {
		binary.BigEndian.PutUint32(ctr[:], uint32(i))
		h := sha256.New()
		h.Write([]byte("eyewnder-oprf-H"))
		h.Write(ctr[:])
		h.Write(x)
		buf = h.Sum(buf)
	}
	v := new(big.Int).SetBytes(buf[:need])
	v.Mod(v, n)
	if v.Sign() == 0 {
		v.SetInt64(1)
	}
	return v
}

// finalize implements G: hash the canonical encoding of the group element
// into OutputSize bytes.
func finalize(y *big.Int, n *big.Int) []byte {
	buf := make([]byte, (n.BitLen()+7)/8)
	y.FillBytes(buf)
	h := sha256.New()
	h.Write([]byte("eyewnder-oprf-G"))
	h.Write(buf)
	return h.Sum(nil)
}
