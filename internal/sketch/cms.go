// Package sketch implements the count-min sketch (CMS) of Cormode and
// Muthukrishnan, the synopsis data structure at the heart of eyeWnder's
// privacy-preserving distributed counting protocol (Section 6.1 of the
// paper).
//
// A CMS is a d×w array of counters with d pairwise-independent hash
// functions. Encoding an element increments one counter per row; the
// estimated frequency is the minimum over the element's d counters, which
// guarantees
//
//	count(x) <= Query(x) <= count(x) + ε·N   with probability 1−δ
//
// where N is the total number of updates, d = ⌈ln(1/δ)⌉ and w = ⌈e/ε⌉.
//
// Two properties make the CMS the right structure for eyeWnder:
//
//  1. It is a linear sketch: the cell-wise sum of per-user sketches equals
//     the sketch of the multiset union, so the back-end can aggregate
//     blinded reports and unblind only the total (Section 6 "Aggregation
//     and unblinding").
//  2. Its size depends only on (ε, δ), not on the number of distinct ads,
//     so users who cannot enumerate the global ad set A can still report.
//
// Cells are uint64 so that the additive-share blinding of package blind
// cancels exactly under wrap-around arithmetic.
//
// # Hashing
//
// Row indices are derived with Kirsch–Mitzenmacher double hashing: the key
// is hashed once into a 128-bit value (h1, h2) and row j uses column
// (h1 + j·h2) mod w. Kirsch and Mitzenmacher showed two independent hash
// functions combined this way preserve the sketch's error guarantees, and
// it makes Update/Query allocation-free with exactly one pass over the
// key. Because the hash defines the cell layout, every protocol
// participant must run the same hash version — a client sketching with a
// different layout would corrupt the blinded aggregate (see hash128).
package sketch

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"eyewnder/internal/vec"
)

// Errors returned by the package.
var (
	ErrDimensionMismatch = errors.New("sketch: dimension mismatch")
	ErrBadParams         = errors.New("sketch: epsilon and delta must be in (0,1)")
	ErrCorrupt           = errors.New("sketch: corrupt serialized data")
)

// CMS is a count-min sketch. The zero value is not usable; construct with
// New or NewWithDimensions.
type CMS struct {
	d, w  int
	cells []uint64 // row-major d×w
	n     uint64   // total updates (weight), for error-bound reporting
	seed  uint64   // row-hash seed base so independent sketches agree
}

// Dimensions returns the geometry New would allocate for (ε, δ):
// d = ⌈ln(1/δ)⌉ rows and w = ⌈e/ε⌉ columns. Validators that only need
// the cell count (e.g. checking an uploaded vector's length) use this
// instead of building a throwaway sketch.
func Dimensions(epsilon, delta float64) (d, w int, err error) {
	if epsilon <= 0 || epsilon >= 1 || delta <= 0 || delta >= 1 {
		return 0, 0, ErrBadParams
	}
	return int(math.Ceil(math.Log(1 / delta))), int(math.Ceil(math.E / epsilon)), nil
}

// New returns a CMS sized for the requested error ε and failure
// probability δ: d = ⌈ln(1/δ)⌉ rows and w = ⌈e/ε⌉ columns.
func New(epsilon, delta float64) (*CMS, error) {
	d, w, err := Dimensions(epsilon, delta)
	if err != nil {
		return nil, err
	}
	return NewWithDimensions(d, w)
}

// NewForElements returns a CMS sized the way the paper sizes it
// (Section 6.1): d = ⌈ln(T/δ)⌉ rows and w = ⌈e/ε⌉ columns, where T is the
// number of elements to be counted. The extra ln T depth union-bounds the
// failure probability across all T estimates, and reproduces the paper's
// reported sketch sizes exactly: with ε = δ = 0.001 and 4-byte cells,
// 185 KB, 196 KB and 207 KB for T = 10k, 50k and 100k.
func NewForElements(t int, epsilon, delta float64) (*CMS, error) {
	if epsilon <= 0 || epsilon >= 1 || delta <= 0 || delta >= 1 {
		return nil, ErrBadParams
	}
	if t < 1 {
		return nil, fmt.Errorf("sketch: invalid element count %d", t)
	}
	d := int(math.Ceil(math.Log(float64(t) / delta)))
	w := int(math.Ceil(math.E / epsilon))
	return NewWithDimensions(d, w)
}

// NewWithDimensions returns a CMS with exactly d rows and w columns.
func NewWithDimensions(d, w int) (*CMS, error) {
	if d < 1 || w < 1 {
		return nil, fmt.Errorf("sketch: invalid dimensions d=%d w=%d", d, w)
	}
	return &CMS{d: d, w: w, cells: make([]uint64, d*w)}, nil
}

// Depth returns the number of rows d.
func (c *CMS) Depth() int { return c.d }

// Width returns the number of columns w.
func (c *CMS) Width() int { return c.w }

// Cells returns the total number of counters d·w.
func (c *CMS) Cells() int { return len(c.cells) }

// N returns the total weight of all updates applied to the sketch.
// After Merge it is the sum of the merged totals.
func (c *CMS) N() uint64 { return c.n }

// SizeBytes returns the serialized payload size assuming cellBytes bytes
// per counter (the paper assumes 4-byte cells in its Section 7.1 overhead
// analysis).
func (c *CMS) SizeBytes(cellBytes int) int { return len(c.cells) * cellBytes }

// EpsilonDelta reports the (ε, δ) guarantee implied by the dimensions.
func (c *CMS) EpsilonDelta() (epsilon, delta float64) {
	return math.E / float64(c.w), math.Exp(-float64(c.d))
}

// indexSeed hashes x exactly once and returns the row-0 column, the
// per-row Kirsch–Mitzenmacher stride, and the width, all as uint64. Row j
// reads column (idx + j·step) mod w; the successor is derived with a
// conditional subtract, so the d-row walk costs no division or rehash.
func (c *CMS) indexSeed(x []byte) (idx, step, width uint64) {
	h1, h2 := hash128(x, c.seed)
	width = uint64(c.w)
	idx = h1 % width
	step = h2 % width
	if step == 0 {
		step = 1 // keep rows from collapsing onto one column
	}
	return idx, step, width
}

// Indexes computes the d column indices of x — one per row — hashing the
// key exactly once. The indices are written into buf when it has capacity
// d (no allocation) and the d-element slice is returned. Callers that
// need the same key's cells more than once (e.g. a read-modify-write)
// should call Indexes once and reuse the result instead of re-querying.
func (c *CMS) Indexes(x []byte, buf []int) []int {
	if cap(buf) < c.d {
		buf = make([]int, c.d)
	}
	buf = buf[:c.d]
	idx, step, width := c.indexSeed(x)
	for j := range buf {
		buf[j] = int(idx)
		idx += step
		if idx >= width {
			idx -= width
		}
	}
	return buf
}

// Update encodes one occurrence of x.
func (c *CMS) Update(x []byte) { c.UpdateWeighted(x, 1) }

// UpdateString encodes one occurrence of the string s.
func (c *CMS) UpdateString(s string) { c.UpdateWeighted([]byte(s), 1) }

// UpdateWeighted adds weight w to every row-counter of x. The key is
// hashed once; the whole update is allocation-free.
func (c *CMS) UpdateWeighted(x []byte, w uint64) {
	idx, step, width := c.indexSeed(x)
	row := 0
	for j := 0; j < c.d; j++ {
		c.cells[row+int(idx)] += w
		row += c.w
		idx += step
		if idx >= width {
			idx -= width
		}
	}
	c.n += w
}

// ConservativeUpdate adds weight w using the conservative-update rule:
// only counters that would otherwise fall below the new estimate are
// raised. It strictly reduces over-estimation for skewed streams and is
// provided for the sketch-geometry ablation; the paper's protocol uses the
// plain Update because conservative update is NOT linear and therefore
// incompatible with blinded aggregation.
//
// The key is hashed once and the derived row indices are replayed for
// both the minimum pass and the write pass.
func (c *CMS) ConservativeUpdate(x []byte, w uint64) {
	idx0, step, width := c.indexSeed(x)
	min := uint64(math.MaxUint64)
	idx, row := idx0, 0
	for j := 0; j < c.d; j++ {
		if v := c.cells[row+int(idx)]; v < min {
			min = v
		}
		row += c.w
		idx += step
		if idx >= width {
			idx -= width
		}
	}
	est := min + w
	idx, row = idx0, 0
	for j := 0; j < c.d; j++ {
		if p := &c.cells[row+int(idx)]; *p < est {
			*p = est
		}
		row += c.w
		idx += step
		if idx >= width {
			idx -= width
		}
	}
	c.n += w
}

// Query returns the estimated frequency of x: min over rows. The key is
// hashed once; the query is allocation-free.
func (c *CMS) Query(x []byte) uint64 {
	idx, step, width := c.indexSeed(x)
	min := uint64(math.MaxUint64)
	row := 0
	for j := 0; j < c.d; j++ {
		if v := c.cells[row+int(idx)]; v < min {
			min = v
		}
		row += c.w
		idx += step
		if idx >= width {
			idx -= width
		}
	}
	return min
}

// QueryString returns the estimated frequency of the string s.
func (c *CMS) QueryString(s string) uint64 { return c.Query([]byte(s)) }

// ErrorBound returns the additive error ε·N that Query may exceed the true
// count by, with probability at least 1−δ.
func (c *CMS) ErrorBound() float64 {
	eps, _ := c.EpsilonDelta()
	return eps * float64(c.n)
}

// Seed returns the row-hash seed base. Together with (d, w) it defines
// the cell layout; it is layout metadata, not a secret.
func (c *CMS) Seed() uint64 { return c.seed }

// SameLayout reports whether other shares c's dimensions and hash seed —
// the precondition for cell-wise aggregation to be meaningful.
func (c *CMS) SameLayout(other *CMS) bool {
	return other != nil && c.d == other.d && c.w == other.w && c.seed == other.seed
}

// LayoutMatches reports whether a sketch with the given header fields
// would share c's cell layout. The streaming ingestion path uses it to
// validate a report's raw cell vector without materializing a CMS.
func (c *CMS) LayoutMatches(d, w int, seed uint64) bool {
	return c.d == d && c.w == w && c.seed == seed
}

// AddWeight adds delta to the update total n without touching cells: the
// bookkeeping half of a merge whose cell adds happen externally (the
// striped round aggregation). Not safe for concurrent use; callers
// serialize (the aggregator does so under its bookkeeping lock).
func (c *CMS) AddWeight(delta uint64) { c.n += delta }

// Merge adds other into c cell-wise. Both sketches must share dimensions
// (and therefore hash layout). Merge is the linear-aggregation primitive
// used by the back-end server.
func (c *CMS) Merge(other *CMS) error {
	if !c.SameLayout(other) {
		return ErrDimensionMismatch
	}
	vec.Add(c.cells, other.cells)
	c.n += other.n
	return nil
}

// Restore rebuilds a CMS from externally persisted state: dimensions,
// hash seed, update total, and the flat cell vector, which is adopted
// (not copied — the caller hands over ownership). It is the
// crash-recovery counterpart of FlatCells/Seed/N: the durable round
// store snapshots those and Restore turns them back into a live sketch
// with the identical cell layout.
func Restore(d, w int, seed, n uint64, cells []uint64) (*CMS, error) {
	if d < 1 || w < 1 || len(cells) != d*w {
		return nil, fmt.Errorf("sketch: restore dimensions d=%d w=%d with %d cells", d, w, len(cells))
	}
	return &CMS{d: d, w: w, seed: seed, n: n, cells: cells}, nil
}

// Clone returns a deep copy of c.
func (c *CMS) Clone() *CMS {
	cp := &CMS{d: c.d, w: c.w, n: c.n, seed: c.seed, cells: make([]uint64, len(c.cells))}
	copy(cp.cells, c.cells)
	return cp
}

// Reset zeroes all counters and the update total, keeping dimensions.
func (c *CMS) Reset() {
	for i := range c.cells {
		c.cells[i] = 0
	}
	c.n = 0
}

// Cell returns the raw counter at row j, column k. It is exported so that
// the blinding layer can blind each cell, per Section 6 of the paper.
func (c *CMS) Cell(j, k int) uint64 { return c.cells[j*c.w+k] }

// SetCell overwrites the raw counter at row j, column k.
func (c *CMS) SetCell(j, k int, v uint64) { c.cells[j*c.w+k] = v }

// AddToCell adds delta (mod 2^64) to the raw counter at flat index i.
// Wrap-around is intentional: blinding factors are additive shares of zero
// modulo 2^64.
func (c *CMS) AddToCell(i int, delta uint64) { c.cells[i] += delta }

// FlatCells returns the backing counter slice (row-major). Callers must
// not grow it; mutating entries is allowed and is how the privacy protocol
// applies blinding in place.
func (c *CMS) FlatCells() []uint64 { return c.cells }

// maxUnmarshalCells caps d·w for deserialized sketches: 2²⁸ cells is a
// 2 GiB payload, far beyond any geometry the protocol uses, and keeps the
// later int conversions and 8·d·w size arithmetic overflow-free even on
// 32-bit platforms.
const maxUnmarshalCells = 1 << 28

// MarshalBinary serializes the sketch: header (d, w, n, seed) followed by
// the cells in little-endian order. The cell block is encoded in bulk
// (a single memmove on little-endian hosts), not cell by cell.
func (c *CMS) MarshalBinary() ([]byte, error) {
	return c.AppendBinary(make([]byte, 0, 32+8*len(c.cells)))
}

// AppendBinary appends the MarshalBinary encoding to b and returns the
// extended slice (encoding.BinaryAppender). Callers that serialize
// repeatedly — snapshot writers, report submitters — pass a reused
// buffer and pay only the encode, not a fresh allocation per sketch.
func (c *CMS) AppendBinary(b []byte) ([]byte, error) {
	off := len(b)
	b = append(b, make([]byte, 32+8*len(c.cells))...)
	buf := b[off:]
	binary.LittleEndian.PutUint64(buf[0:], uint64(c.d))
	binary.LittleEndian.PutUint64(buf[8:], uint64(c.w))
	binary.LittleEndian.PutUint64(buf[16:], c.n)
	binary.LittleEndian.PutUint64(buf[24:], c.seed)
	vec.PutLE(buf[32:], c.cells)
	return b, nil
}

// UnmarshalBinary restores a sketch serialized by MarshalBinary. The
// header is validated in uint64 arithmetic before any size computation, so
// adversarial (d, w) pairs cannot overflow the expected-length check or
// provoke a huge allocation. A receiver whose existing cell slice has
// enough capacity is decoded into in place — reusing one CMS across many
// decodes (the ingest handler's shape) amortizes the allocation away —
// so a sketch previously shared via FlatCells must not be reused as a
// decode target.
func (c *CMS) UnmarshalBinary(data []byte) error {
	if len(data) < 32 {
		return ErrCorrupt
	}
	d64 := binary.LittleEndian.Uint64(data[0:])
	w64 := binary.LittleEndian.Uint64(data[8:])
	if d64 < 1 || w64 < 1 || d64 > 1<<20 || w64 > 1<<32 {
		return ErrCorrupt
	}
	cells := d64 * w64 // ≤ 2⁵² by the bounds above: no uint64 overflow
	if cells > maxUnmarshalCells {
		return ErrCorrupt
	}
	if uint64(len(data)) != 32+8*cells {
		return ErrCorrupt
	}
	c.d, c.w = int(d64), int(w64)
	c.n = binary.LittleEndian.Uint64(data[16:])
	c.seed = binary.LittleEndian.Uint64(data[24:])
	if uint64(cap(c.cells)) >= cells {
		c.cells = c.cells[:cells]
	} else {
		c.cells = make([]uint64, cells)
	}
	vec.GetLE(c.cells, data[32:])
	return nil
}

// String implements fmt.Stringer with a compact summary.
func (c *CMS) String() string {
	eps, delta := c.EpsilonDelta()
	return fmt.Sprintf("CMS(d=%d, w=%d, n=%d, ε=%.4g, δ=%.4g)", c.d, c.w, c.n, eps, delta)
}
