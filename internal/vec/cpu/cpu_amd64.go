//go:build amd64 && !purego

package cpu

// Implemented in cpuid_amd64.s.
func cpuid(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)
func xgetbv() (eax, edx uint32)

func init() {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const (
		osxsave = 1 << 27
		avx     = 1 << 28
	)
	if ecx1&osxsave == 0 || ecx1&avx == 0 {
		return
	}
	// The OS must have enabled XMM (bit 1) and YMM (bit 2) state saving,
	// or executing a VEX-256 instruction faults even on capable silicon.
	if eax, _ := xgetbv(); eax&0x6 != 0x6 {
		return
	}
	_, ebx7, _, _ := cpuid(7, 0)
	const avx2 = 1 << 5
	HasAVX2 = ebx7&avx2 != 0
}
