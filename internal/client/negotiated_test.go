package client_test

import (
	"strings"
	"testing"

	"eyewnder/internal/adsim"
	"eyewnder/internal/backend"
	"eyewnder/internal/client"
	"eyewnder/internal/detector"
	"eyewnder/internal/oprf"
	"eyewnder/internal/privacy"
	"eyewnder/internal/wire"
)

// negotiatedExt dials the servers and builds an extension with ZERO
// protocol parameters: everything comes from the Welcome handshake.
func negotiatedExt(t *testing.T, user int, beAddr, oprfAddr string) *client.Extension {
	t.Helper()
	beConn, err := wire.Dial(beAddr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { beConn.Close() })
	oConn, err := wire.Dial(oprfAddr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { oConn.Close() })
	pub, err := client.FetchOPRFPublicKey(oConn)
	if err != nil {
		t.Fatal(err)
	}
	ext, err := client.New(client.Options{
		User: user, Detector: detector.DefaultConfig(),
	}, &client.WireBackend{C: beConn}, &client.WireEvaluator{C: oConn}, pub)
	if err != nil {
		t.Fatal(err)
	}
	return ext
}

// The negotiated deployment end to end over TCP: extensions carry no
// protocol flags at all — geometry, suite, roster size, and config
// version arrive via Hello/Welcome — a full round closes, then a
// mid-deployment re-registration bumps the roster version and a client
// still pinned to the old config is rejected with ErrIncompatibleConfig
// (over the wire, on the streamed path) until it re-Joins.
func TestNegotiatedSessionsWithRosterBump(t *testing.T) {
	const nUsers = 3
	params := testParams()

	osrv, err := oprf.NewServerFromKey(testRSAKey())
	if err != nil {
		t.Fatal(err)
	}
	oprfWire, err := backend.ServeOPRF("127.0.0.1:0", osrv)
	if err != nil {
		t.Fatal(err)
	}
	defer oprfWire.Close()
	be, err := backend.New(backend.Config{
		Params: params, Users: nUsers, UsersEstimator: detector.EstimatorMean,
	})
	if err != nil {
		t.Fatal(err)
	}
	beWire, err := be.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer beWire.Close()

	exts := make([]*client.Extension, nUsers)
	for i := 0; i < nUsers; i++ {
		exts[i] = negotiatedExt(t, i, beWire.Addr(), oprfWire.Addr())
		// The negotiated config mirrors the server's flags, not any
		// client-side default.
		cfg := exts[i].Config()
		if cfg.Params.Epsilon != params.Epsilon || cfg.Params.IDSpace != params.IDSpace ||
			cfg.RosterSize != nUsers || cfg.Version == 0 {
			t.Fatalf("negotiated config = %+v", cfg)
		}
		if err := exts[i].Register(); err != nil {
			t.Fatal(err)
		}
	}
	for _, ext := range exts {
		if err := ext.Join(); err != nil {
			t.Fatal(err)
		}
	}
	pinned := exts[0].Config().Version
	if pinned != be.CurrentConfig().Version {
		t.Fatalf("Join pinned v%d, server at v%d", pinned, be.CurrentConfig().Version)
	}

	// Round 1 closes normally under the negotiated config.
	for _, ext := range exts {
		if err := ext.ObserveAdDirect("https://ads.example/common", "www.news.example", adsim.SimStart); err != nil {
			t.Fatal(err)
		}
		if err := ext.SubmitReport(1); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := be.CloseRound(1); err != nil {
		t.Fatal(err)
	}

	// Mid-deployment roster change: user 0 re-enrolls with a fresh key.
	replacement := negotiatedExt(t, 0, beWire.Addr(), oprfWire.Addr())
	if err := replacement.Register(); err != nil {
		t.Fatal(err)
	}
	if be.CurrentConfig().Version != pinned+1 {
		t.Fatalf("re-registration did not bump: v%d", be.CurrentConfig().Version)
	}

	// Extension 1 is still pinned to the old config: its report into the
	// new round must be rejected — over the wire, through the streamed
	// frame path — with the aggregator's ErrIncompatibleConfig.
	err = exts[1].SubmitReport(2)
	if err == nil || !strings.Contains(err.Error(), privacy.ErrIncompatibleConfig.Error()) {
		t.Fatalf("stale report over the wire = %v, want ErrIncompatibleConfig text", err)
	}

	// Re-Join adopts the new roster (and version); reporting works again.
	for _, ext := range []*client.Extension{replacement, exts[1], exts[2]} {
		if err := ext.Join(); err != nil {
			t.Fatal(err)
		}
		if got := ext.Config().Version; got != pinned+1 {
			t.Fatalf("re-Join pinned v%d, want v%d", got, pinned+1)
		}
		if err := ext.SubmitReport(2); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := be.CloseRound(2); err != nil {
		t.Fatal(err)
	}
}

// An extension with neither explicit Params nor a negotiating backend
// must fail construction loudly.
func TestNewRequiresParamsOrNegotiator(t *testing.T) {
	osrv, err := oprf.NewServerFromKey(testRSAKey())
	if err != nil {
		t.Fatal(err)
	}
	_, err = client.New(client.Options{User: 0, Detector: detector.DefaultConfig()},
		bareBackend{}, osrv, osrv.PublicKey())
	if err == nil {
		t.Fatal("New accepted a zero config with no negotiator")
	}
}

// bareBackend satisfies BackendAPI but not ConfigNegotiator.
type bareBackend struct{}

func (bareBackend) Register(int, []byte) (int, error)            { return 0, nil }
func (bareBackend) Roster() ([][]byte, uint32, uint32, error)    { return nil, 0, 0, nil }
func (bareBackend) SubmitReport(*privacy.Report) error           { return nil }
func (bareBackend) RoundStatus(uint64) (int, []int, bool, error) { return 0, nil, false, nil }
func (bareBackend) SubmitAdjustment(int, uint64, []uint64) error { return nil }
func (bareBackend) Threshold(uint64) (float64, error)            { return 0, nil }
func (bareBackend) AuditAd(uint64, uint64) (uint64, error)       { return 0, nil }
