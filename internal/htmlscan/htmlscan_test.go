package htmlscan

import (
	"testing"
	"testing/quick"
)

func TestBasicDocument(t *testing.T) {
	src := `<html><body><p class="x">Hello</p><br/></body></html>`
	toks := All(src)
	if len(toks) == 0 {
		t.Fatal("no tokens")
	}
	var names []string
	for _, tok := range toks {
		if tok.Type == StartTag {
			names = append(names, tok.Name)
		}
	}
	want := []string{"html", "body", "p", "br"}
	if len(names) != len(want) {
		t.Fatalf("start tags %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("start tags %v, want %v", names, want)
		}
	}
}

func TestAttributes(t *testing.T) {
	src := `<a href="https://x.example/p?a=1&b=2" target=_blank data-ad>link</a>`
	toks := All(src)
	a := toks[0]
	if a.Type != StartTag || a.Name != "a" {
		t.Fatalf("first token %+v", a)
	}
	if v, ok := a.Attr("href"); !ok || v != "https://x.example/p?a=1&b=2" {
		t.Fatalf("href = %q, %v", v, ok)
	}
	if v, ok := a.Attr("target"); !ok || v != "_blank" {
		t.Fatalf("target = %q, %v", v, ok)
	}
	if _, ok := a.Attr("data-ad"); !ok {
		t.Fatal("bare attribute missing")
	}
	if _, ok := a.Attr("nope"); ok {
		t.Fatal("phantom attribute")
	}
}

func TestSingleQuotedAndAngleInAttr(t *testing.T) {
	src := `<div onclick='go("https://t.example/x?a<b")'>x</div>`
	toks := All(src)
	d := toks[0]
	if v, _ := d.Attr("onclick"); v != `go("https://t.example/x?a<b")` {
		t.Fatalf("onclick = %q", v)
	}
}

func TestScriptBodyIsRawText(t *testing.T) {
	src := `<script type="text/javascript">if (a < b) { window.open("https://lp.example/x"); }</script><p>after</p>`
	toks := All(src)
	if toks[0].Type != StartTag || toks[0].Name != "script" {
		t.Fatalf("tok0 = %+v", toks[0])
	}
	if toks[1].Type != Text || !contains(toks[1].Data, "window.open") || !contains(toks[1].Data, "a < b") {
		t.Fatalf("script body = %+v", toks[1])
	}
	if toks[2].Type != EndTag || toks[2].Name != "script" {
		t.Fatalf("tok2 = %+v", toks[2])
	}
	if toks[3].Type != StartTag || toks[3].Name != "p" {
		t.Fatalf("tok3 = %+v", toks[3])
	}
}

func TestComments(t *testing.T) {
	src := `<!-- ad slot 3 --><p>x</p><!doctype html>`
	toks := All(src)
	if toks[0].Type != Comment || toks[0].Data != " ad slot 3 " {
		t.Fatalf("comment = %+v", toks[0])
	}
	last := toks[len(toks)-1]
	if last.Type != Comment {
		t.Fatalf("doctype token = %+v", last)
	}
}

func TestUnterminatedStructures(t *testing.T) {
	// Truncated documents must not loop or panic.
	for _, src := range []string{
		"<a href=\"x",
		"<!-- never closed",
		"<script>var x = 1;",
		"<",
		"<>",
		"text only",
		"</closing>",
	} {
		toks := All(src)
		_ = toks // reaching here without a hang is the assertion
	}
}

func TestSelfClosingScriptDoesNotSwallow(t *testing.T) {
	src := `<script src="https://ads.example/x.js"/><p>visible</p>`
	toks := All(src)
	foundP := false
	for _, tok := range toks {
		if tok.Type == StartTag && tok.Name == "p" {
			foundP = true
		}
	}
	if !foundP {
		t.Fatal("self-closing script swallowed following markup")
	}
}

func TestCaseInsensitiveTags(t *testing.T) {
	toks := All(`<IFRAME SRC="https://adx.example/f"></IFRAME>`)
	if toks[0].Name != "iframe" {
		t.Fatalf("name = %q", toks[0].Name)
	}
	if v, _ := toks[0].Attr("src"); v != "https://adx.example/f" {
		t.Fatalf("src = %q", v)
	}
	if toks[1].Type != EndTag || toks[1].Name != "iframe" {
		t.Fatalf("end tag = %+v", toks[1])
	}
}

func TestTextBetweenTags(t *testing.T) {
	toks := All(`<b>bold</b> and plain`)
	if toks[1].Type != Text || toks[1].Data != "bold" {
		t.Fatalf("inner text = %+v", toks[1])
	}
	last := toks[len(toks)-1]
	if last.Type != Text || last.Data != " and plain" {
		t.Fatalf("tail text = %+v", last)
	}
}

// Property: the scanner terminates and never panics on arbitrary input.
func TestPropertyNeverPanics(t *testing.T) {
	f := func(src string) bool {
		if len(src) > 4096 {
			src = src[:4096]
		}
		All(src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
