package backend

import (
	"encoding/binary"
	"errors"
	"strings"
	"sync"
	"testing"

	"eyewnder/internal/blind"
	"eyewnder/internal/detector"
	"eyewnder/internal/privacy"
	"eyewnder/internal/sketch"
	"eyewnder/internal/wire"
)

// Per-round locking must keep concurrent submissions and status polls
// coherent: every report lands exactly once and the closed aggregate
// recovers the exact multiset union. Run with -race.
func TestConcurrentSubmitAndClose(t *testing.T) {
	b, clients := newBackend(t)
	const round = 5

	ads := [][]string{
		{"https://a.example/1", "https://a.example/2"},
		{"https://a.example/1"},
		{"https://b.example/9", "https://a.example/2"},
		{"https://a.example/1", "https://b.example/9"},
	}
	// Observation and report construction are per-client (client state is
	// not shared); only the backend interaction runs concurrently.
	adIDs := make(map[string]uint64)
	var wg sync.WaitGroup
	errs := make(chan error, 2*len(clients))
	for u, c := range clients {
		for _, ad := range ads[u] {
			id, err := c.ObserveAd(ad)
			if err != nil {
				t.Fatal(err)
			}
			adIDs[ad] = id
		}
		rep, err := c.Report(round)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(2)
		go func() {
			defer wg.Done()
			if err := b.SubmitReport(rep); err != nil {
				errs <- err
			}
		}()
		go func() {
			defer wg.Done()
			// A status poll is observation only: racing ahead of the
			// first report it sees ErrUnknownRound (the round does not
			// exist yet), never a freshly created empty round.
			if _, _, _, err := b.RoundStatus(round); err != nil && !errors.Is(err, ErrUnknownRound) {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if _, _, err := b.CloseRound(round); err != nil {
		t.Fatal(err)
	}
	users, err := b.AuditAd(round, adIDs["https://a.example/1"])
	if err != nil {
		t.Fatal(err)
	}
	if users < 3 {
		t.Fatalf("AuditAd(a.example/1) = %d, want >= 3 (CMS never underestimates)", users)
	}
}

// A wrong-length adjustment share must be rejected at upload time — if it
// were stored, every later CloseRound would fail on it and the round could
// never close.
func TestSubmitAdjustmentRejectsBadLength(t *testing.T) {
	b, _ := newBackend(t)
	if err := b.SubmitAdjustment(0, 1, make([]uint64, 7)); err == nil {
		t.Fatal("wrong-length adjustment share accepted")
	}
}

// A CloseRound that fails must leave the round aggregate untouched, so
// that a later successful close does not subtract adjustment shares
// twice; and an adjustment upload racing ahead of its own report must
// be refused without creating the round.
func TestCloseRoundRetrySafe(t *testing.T) {
	b, clients := newBackend(t)
	const round = 9
	sketchCells := b.cells

	// A share before any report touches the round: refused (the round
	// does not even exist yet — shares repair rounds, never open them).
	adj, err := clients[0].Adjust(round, sketchCells, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.SubmitAdjustment(0, round, adj); !errors.Is(err, ErrUnknownRound) {
		t.Fatalf("pre-report adjustment share: err = %v, want ErrUnknownRound", err)
	}

	// Users 0, 2, 3 report (user 1 is missing). A close attempt with no
	// shares yet must fail without consuming anything.
	for _, u := range []int{0, 2, 3} {
		if _, err := clients[u].ObserveAd("https://ad.example/x"); err != nil {
			t.Fatal(err)
		}
		rep, err := clients[u].Report(round)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.SubmitReport(rep); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := b.CloseRound(round); err == nil {
		t.Fatal("close with a missing user and no adjustment shares succeeded")
	}

	// All three reporters adjust for user 1; the retried close succeeds.
	for _, u := range []int{0, 2, 3} {
		adj, err := clients[u].Adjust(round, sketchCells, []int{1})
		if err != nil {
			t.Fatal(err)
		}
		if err := b.SubmitAdjustment(u, round, adj); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := b.CloseRound(round); err != nil {
		t.Fatal(err)
	}
	counts, err := b.UserCountsOfRound(round)
	if err != nil {
		t.Fatal(err)
	}
	// Had the failed close consumed the first share, cancellation would
	// break and the counts would be uniform noise (≈ IDSpace entries with
	// astronomic values). Exact recovery means few, small counts.
	if len(counts) > 200 {
		t.Fatalf("close after failed attempt recovered %d nonzero IDs — adjustment shares double-applied?", len(counts))
	}
	for id, v := range counts {
		if v > 3 {
			t.Fatalf("id %d count = %d, want <= 3 reporters", id, v)
		}
	}
}

// Same-round contention: with the striped merge, many reporters folding
// into ONE round concurrently must still produce the exact multiset
// union. Reports here are unblinded plain sketches (the back-end cannot
// tell, and with a full roster no adjustment pass is needed), so the
// closed round's counts are exactly checkable. Run with -race: this is
// the regression test for the striped merge replacing the single round
// lock.
func TestSameRoundConcurrentStripedMerge(t *testing.T) {
	const (
		users      = 32
		round      = 3
		adsPerUser = 40
		stripes    = 8
	)
	// Paper-density geometry (19k cells), with an explicit stripe count:
	// the default test params' 1360-cell sketch would clamp to few
	// stripes and leave the multi-stripe rotation logic untested.
	params := privacy.Params{Epsilon: 0.001, Delta: 0.001, IDSpace: 2000, Suite: testParams().Suite}
	b, err := New(Config{
		Params: params, Users: users,
		UsersEstimator: detector.EstimatorMean,
		MergeStripes:   stripes,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := b.MergeStripes(); got != stripes {
		t.Fatalf("MergeStripes = %d, want %d (multi-stripe path not exercised)", got, stripes)
	}

	// Every user reports a deterministic, partially overlapping ad set.
	want := make(map[uint64]uint64) // ad ID -> reporter count
	reports := make([]*privacy.Report, users)
	for u := 0; u < users; u++ {
		cms, err := params.NewSketch()
		if err != nil {
			t.Fatal(err)
		}
		var key [8]byte
		for a := 0; a < adsPerUser; a++ {
			id := uint64((u*17 + a*13) % int(params.IDSpace))
			binary.LittleEndian.PutUint64(key[:], id)
			cms.Update(key[:])
			want[id]++
		}
		reports[u] = &privacy.Report{User: u, Round: round, Sketch: cms}
	}

	var wg sync.WaitGroup
	errs := make(chan error, users)
	for _, rep := range reports {
		wg.Add(1)
		go func(rep *privacy.Report) {
			defer wg.Done()
			if err := b.SubmitReport(rep); err != nil {
				errs <- err
			}
		}(rep)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if _, _, err := b.CloseRound(round); err != nil {
		t.Fatal(err)
	}
	counts, err := b.UserCountsOfRound(round)
	if err != nil {
		t.Fatal(err)
	}
	for id, n := range want {
		if counts[id] < n {
			t.Fatalf("ad %d count = %d, want >= %d (CMS never underestimates)", id, counts[id], n)
		}
	}
}

// The streamed ingestion path must agree with the JSON path: reports
// submitted as binary frames over TCP land in the same aggregate, and
// duplicate/closed-round errors surface to the streaming client.
func TestStreamedReportsEndToEnd(t *testing.T) {
	const (
		users = 8
		round = 11
	)
	params := testParams()
	b, err := New(Config{Params: params, Users: users, UsersEstimator: detector.EstimatorMean})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := b.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	want := make(map[uint64]uint64)
	var wg sync.WaitGroup
	errs := make(chan error, users)
	var mu sync.Mutex
	for u := 0; u < users; u++ {
		cms, err := params.NewSketch()
		if err != nil {
			t.Fatal(err)
		}
		var key [8]byte
		for a := 0; a < 20; a++ {
			id := uint64((u*29 + a*7) % int(params.IDSpace))
			binary.LittleEndian.PutUint64(key[:], id)
			cms.Update(key[:])
			mu.Lock()
			want[id]++
			mu.Unlock()
		}
		wg.Add(1)
		go func(u int, cms *sketch.CMS) {
			defer wg.Done()
			cli, err := wire.Dial(srv.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer cli.Close()
			err = cli.SubmitReportFrame(&wire.ReportFrame{
				User: u, Round: round,
				D: cms.Depth(), W: cms.Width(),
				N: cms.N(), Seed: cms.Seed(),
				Cells: cms.FlatCells(),
			})
			if err != nil {
				errs <- err
			}
		}(u, cms)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// A duplicate streamed report must be rejected remotely.
	cli, err := wire.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	dup, _ := params.NewSketch()
	if err := cli.SubmitReportFrame(&wire.ReportFrame{
		User: 0, Round: round,
		D: dup.Depth(), W: dup.Width(), N: dup.N(), Seed: dup.Seed(),
		Cells: dup.FlatCells(),
	}); err == nil {
		t.Fatal("duplicate streamed report accepted")
	}

	if _, _, err := b.CloseRound(round); err != nil {
		t.Fatal(err)
	}
	counts, err := b.UserCountsOfRound(round)
	if err != nil {
		t.Fatal(err)
	}
	for id, n := range want {
		if counts[id] < n {
			t.Fatalf("ad %d count = %d, want >= %d", id, counts[id], n)
		}
	}

	// And a report into the now-closed round fails.
	late, _ := params.NewSketch()
	if err := cli.SubmitReportFrame(&wire.ReportFrame{
		User: 7, Round: round,
		D: late.Depth(), W: late.Width(), N: late.N(), Seed: late.Seed(),
		Cells: late.FlatCells(),
	}); err == nil {
		t.Fatal("streamed report into closed round accepted")
	}
}

// Batched-ack streamed ingestion must land every report exactly once in
// the round aggregate, and the frame's keystream suite byte must be
// enforced end to end: a report blinded under the wrong suite is refused
// with an error that reaches the submitting client.
func TestBatchedStreamedIngestion(t *testing.T) {
	const (
		users = 8
		round = 21
	)
	params := testParams()
	params.Keystream = blind.KeystreamAESCTR
	b, err := New(Config{
		Params: params, Users: users,
		UsersEstimator: detector.EstimatorMean,
		AckBatch:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := b.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := wire.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	stream, err := cli.OpenReportStream(0)
	if err != nil {
		t.Fatal(err)
	}
	frame := func(u int, ks blind.Keystream) *wire.ReportFrame {
		cms, err := params.NewSketch()
		if err != nil {
			t.Fatal(err)
		}
		var key [8]byte
		binary.LittleEndian.PutUint64(key[:], uint64(u))
		cms.Update(key[:])
		return &wire.ReportFrame{
			User: u, Round: round,
			D: cms.Depth(), W: cms.Width(), N: cms.N(), Seed: cms.Seed(),
			Keystream: byte(ks),
			Cells:     cms.FlatCells(),
		}
	}
	for u := 0; u < users; u++ {
		if err := stream.Submit(frame(u, blind.KeystreamAESCTR)); err != nil {
			t.Fatalf("submit %d: %v", u, err)
		}
	}
	if err := stream.Close(); err != nil {
		t.Fatal(err)
	}
	reported, _, _, err := b.RoundStatus(round)
	if err != nil || reported != users {
		t.Fatalf("reported = %d, %v; want %d", reported, err, users)
	}

	// A frame blinded under the wrong suite must be refused remotely.
	stream, err = cli.OpenReportStream(0)
	if err != nil {
		t.Fatal(err)
	}
	// (user index users-1 already reported; use a mismatch on a fresh round)
	bad := frame(0, blind.KeystreamHMACSHA256)
	bad.Round = round + 1
	if err := stream.Submit(bad); err != nil {
		t.Fatal(err)
	}
	if err := stream.Close(); err == nil || !strings.Contains(err.Error(), "keystream") {
		t.Fatalf("wrong-suite close err = %v", err)
	}
	if reported, _, _, _ := b.RoundStatus(round + 1); reported != 0 {
		t.Fatalf("mismatched-suite report was folded (reported=%d)", reported)
	}
}
