package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// walMagic heads every WAL segment file.
const walMagic = "EYWNWAL1"

// walBufSize is the append buffer: large enough that a paper-geometry
// report record (~150 KB) takes a couple of flushes, small enough that
// an idle flush is cheap.
const walBufSize = 1 << 18

// ErrStoreClosed is returned by operations on a closed (or failed)
// store.
var ErrStoreClosed = errors.New("store: closed")

// Disk is the durable Store: WAL segments plus snapshots in one
// directory. Safe for concurrent use.
//
// Group commit: appends buffer under the store mutex; Sync flushes and
// fsyncs, and concurrent Sync callers coalesce — whoever becomes the
// leader fsyncs everything appended so far, followers whose records
// that covered return without touching the disk. With the wire layer
// calling Sync once per ack batch, k streamed reports cost one fsync.
type Disk struct {
	dir  string
	opts Options

	mu      sync.Mutex
	cond    *sync.Cond // signals sync completion and rotation safety
	f       *os.File
	bw      *bufio.Writer
	enc     RecordEncoder // reusable encode scratch; guarded by mu
	gen     uint64
	seq     uint64 // records appended
	synced  uint64 // records known durable
	syncing bool   // a group-commit leader is mid-fsync
	err     error  // sticky I/O failure; everything fails after
	closed  bool

	// cfgVer and rosVer are the live deployment-wide config/roster
	// version counters, guarded by mu and updated in the same critical
	// section as the recConfig append (like roster below), so a snapshot
	// rotation always captures counters consistent with the records its
	// segments supersede.
	cfgVer uint32
	rosVer uint32

	reports atomic.Int64 // report appends since the last snapshot

	m *storeMetrics // pre-registered instrument handles, always non-nil

	snapMu sync.Mutex // serializes Snapshot calls

	// roster is the live bulletin board, kept for the next snapshot. It
	// is guarded by mu and updated in the same critical section as the
	// register append, so a snapshot's roster copy — taken inside the
	// rotation's critical section — is guaranteed to reflect every
	// register record in the segments the snapshot supersedes, without
	// depending on any caller-side locking.
	roster map[int][]byte

	// campaigns is the live campaign directory (ID → opaque canonical
	// encoding), guarded by mu with the same discipline as roster: it
	// advances in AppendCampaign's critical section, so a rotation's
	// copy reflects every recCampaign record the snapshot supersedes.
	campaigns map[uint32][]byte

	rounds []*RoundState // recovered at Open, consumed by the back-end
}

// Open opens (creating if needed) the store directory, recovers the
// round and roster state from the newest valid snapshot plus every WAL
// segment after it, and starts a fresh segment for new appends. The
// recovered state is available from Rounds and Roster.
func Open(dir string, opts Options) (*Disk, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	walGens, snapGens, maxGen, err := scanStoreDir(dir, true)
	if err != nil {
		return nil, err
	}

	rec, baseGen, _, _, err := recoverState(dir, walGens, snapGens)
	if err != nil {
		return nil, err
	}

	// New appends go to a fresh segment: the previous segment may end in
	// a torn record, and appending after one would hide every record
	// that follows it from the next recovery.
	gen := maxGen + 1
	f, err := createSegment(filepath.Join(dir, walName(gen)))
	if err != nil {
		return nil, err
	}
	// Stale files below the recovered snapshot are leftovers of a crash
	// between snapshot and prune; their content is in the snapshot.
	for _, g := range walGens {
		if g < baseGen {
			os.Remove(filepath.Join(dir, walName(g)))
		}
	}
	for _, g := range snapGens {
		if g < baseGen {
			os.Remove(filepath.Join(dir, snapName(g)))
		}
	}

	d := &Disk{
		dir:    dir,
		opts:   opts,
		f:      f,
		bw:     bufio.NewWriterSize(f, walBufSize),
		gen:    gen,
		cfgVer: rec.configVersion,
		rosVer: rec.rosterVersion,
		rounds: rec.sortedRounds(),
	}
	d.cond = sync.NewCond(&d.mu)
	d.roster = rec.roster
	d.campaigns = rec.campaigns
	d.m = newStoreMetrics(opts.Metrics)
	if opts.Metrics != nil {
		opts.Metrics.GaugeFunc("eyewnder_store_generation",
			"Active WAL segment generation.",
			func() float64 { return float64(d.Generation()) })
	}
	return d, nil
}

// Generation returns the active WAL segment's generation. It advances
// on every rotation (and by one at Open, which always starts a fresh
// segment).
func (d *Disk) Generation() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.gen
}

// scanStoreDir lists the WAL and snapshot generations present in dir,
// with walGens sorted ascending and snapGens descending (newest first,
// the order snapshot selection wants). When clean is set, leftover .tmp
// files from an interrupted snapshot are removed; a read-only caller
// (Recover, Manifest) passes false.
func scanStoreDir(dir string, clean bool) (walGens, snapGens []uint64, maxGen uint64, err error) {
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, 0, err
	}
	for _, e := range names {
		name := e.Name()
		if filepath.Ext(name) == ".tmp" {
			if clean {
				os.Remove(filepath.Join(dir, name)) // interrupted snapshot
			}
			continue
		}
		if g, ok := parseGen(name, "wal-", ".log"); ok {
			walGens = append(walGens, g)
			if g > maxGen {
				maxGen = g
			}
		} else if g, ok := parseGen(name, "snap-", ".snap"); ok {
			snapGens = append(snapGens, g)
			if g > maxGen {
				maxGen = g
			}
		}
	}
	sort.Slice(snapGens, func(i, j int) bool { return snapGens[i] > snapGens[j] })
	sort.Slice(walGens, func(i, j int) bool { return walGens[i] < walGens[j] })
	return walGens, snapGens, maxGen, nil
}

// recoverState rebuilds round/roster state from the newest valid
// snapshot plus every WAL segment at or after it. It also reports the
// snapshot generation the recovery is based on, and the tail position —
// the generation of the last segment replayed and the byte offset just
// past its last valid record — which a replication follower resumes
// tailing from. snapGens must be sorted newest-first and walGens
// ascending (scanStoreDir's order).
func recoverState(dir string, walGens, snapGens []uint64) (rec *recovered, baseGen, tailGen uint64, tailOff int64, err error) {
	// Newest snapshot that validates wins; a torn one (crash mid-cycle)
	// is skipped and the previous generation carries the recovery.
	var snap *snapshotData
	for _, g := range snapGens {
		s, err := loadSnapshot(filepath.Join(dir, snapName(g)))
		if err == nil {
			snap, baseGen = s, g
			break
		}
	}
	rec = newRecovered(snap)
	for _, g := range walGens {
		if g < baseGen {
			continue // fully reflected in the snapshot
		}
		off, err := replaySegment(filepath.Join(dir, walName(g)), rec)
		if err != nil {
			return nil, 0, 0, 0, err
		}
		tailGen, tailOff = g, off
	}
	return rec, baseGen, tailGen, tailOff, nil
}

// replaySegment folds one WAL segment into rec and returns the byte
// offset just past the last record it applied. A record that fails its
// CRC ends the segment cleanly — everything before it is applied; a
// crash mid-append only ever leaves such a record at the tail, so
// nothing real can follow it. A record whose CRC *validates* but whose
// body does not parse is different: it means version skew or an
// encoder bug, and silently stopping there would discard
// fsync-acknowledged records behind it — so that refuses recovery
// loudly instead.
func replaySegment(path string, rec *recovered) (int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, walBufSize)
	magic := make([]byte, len(walMagic))
	if _, err := io.ReadFull(br, magic); err != nil || string(magic) != walMagic {
		return 0, nil // empty or foreign file: nothing to replay
	}
	off := int64(len(walMagic))
	var buf []byte
	for {
		kind, body, nbuf, err := ReadWALRecord(br, buf)
		buf = nbuf
		if err == io.EOF {
			return off, nil
		}
		if err != nil {
			return off, nil // torn tail: recovery stops at the last valid record
		}
		if err := rec.apply(kind, body); err != nil {
			return off, fmt.Errorf("store: %s: checksummed record does not parse (version skew?): %w", path, err)
		}
		off += walRecordOverhead + int64(len(body))
	}
}

// walRecordOverhead is the framing cost of one WAL record beyond its
// body: length(4) + kind(1) + crc(4).
const walRecordOverhead = 9

// createSegment creates a WAL segment with its magic written and synced.
func createSegment(path string) (*os.File, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.Write([]byte(walMagic)); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	if err := syncDir(filepath.Dir(path)); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

func walName(gen uint64) string { return fmt.Sprintf("wal-%016d.log", gen) }

func snapName(gen uint64) string { return fmt.Sprintf("snap-%016d.snap", gen) }

// parseGen extracts the generation from a store file name.
func parseGen(name, prefix, suffix string) (uint64, bool) {
	if len(name) != len(prefix)+16+len(suffix) ||
		name[:len(prefix)] != prefix || name[len(name)-len(suffix):] != suffix {
		return 0, false
	}
	var g uint64
	for _, c := range name[len(prefix) : len(prefix)+16] {
		if c < '0' || c > '9' {
			return 0, false
		}
		g = g*10 + uint64(c-'0')
	}
	return g, true
}

// Rounds implements Store.
func (d *Disk) Rounds() []*RoundState { return d.rounds }

// Roster implements Store.
func (d *Disk) Roster() map[int][]byte {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[int][]byte, len(d.roster))
	for u, k := range d.roster {
		out[u] = append([]byte(nil), k...)
	}
	return out
}

// ConfigVersions implements Store.
func (d *Disk) ConfigVersions() (uint32, uint32) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.cfgVer, d.rosVer
}

// Campaigns implements Store.
func (d *Disk) Campaigns() map[uint32][]byte {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[uint32][]byte, len(d.campaigns))
	for id, def := range d.campaigns {
		out[id] = append([]byte(nil), def...)
	}
	return out
}

// append runs one encoded record append under the store lock, honoring
// the sticky error and the SyncAlways policy.
func (d *Disk) append(encode func(w io.Writer) error) error {
	d.mu.Lock()
	if err := d.usableLocked(); err != nil {
		d.mu.Unlock()
		return err
	}
	if err := encode(d.bw); err != nil {
		d.failLocked(err)
		d.mu.Unlock()
		return err
	}
	d.seq++
	wrote := d.enc.lastWrote
	if d.opts.Sync != SyncAlways {
		d.mu.Unlock()
		d.m.walAppends.Inc()
		d.m.walBytes.Add(uint64(wrote))
		return nil
	}
	d.mu.Unlock()
	d.m.walAppends.Inc()
	d.m.walBytes.Add(uint64(wrote))
	return d.Sync()
}

// usableLocked reports the sticky failure state. Caller holds d.mu.
func (d *Disk) usableLocked() error {
	if d.closed {
		return ErrStoreClosed
	}
	return d.err
}

// failLocked records a sticky I/O failure. Once the WAL cannot be
// trusted to contain what the caller was promised, every subsequent
// operation fails rather than acknowledge reports that were never made
// durable. Caller holds d.mu.
func (d *Disk) failLocked(err error) {
	if d.err == nil {
		d.err = err
	}
	d.cond.Broadcast()
}

// AppendRegister implements Store. The in-memory roster is updated in
// the same critical section as the record append: a snapshot rotation
// can then never observe the record in a superseded segment without
// also observing the roster entry.
func (d *Disk) AppendRegister(user int, publicKey []byte) error {
	d.mu.Lock()
	if err := d.usableLocked(); err != nil {
		d.mu.Unlock()
		return err
	}
	if err := d.enc.register(d.bw, user, publicKey); err != nil {
		d.failLocked(err)
		d.mu.Unlock()
		return err
	}
	d.seq++
	wrote := d.enc.lastWrote
	if d.roster == nil {
		d.roster = make(map[int][]byte)
	}
	d.roster[user] = append([]byte(nil), publicKey...)
	sync := d.opts.Sync == SyncAlways
	d.mu.Unlock()
	d.m.walAppends.Inc()
	d.m.walBytes.Add(uint64(wrote))
	if sync {
		return d.Sync()
	}
	return nil
}

// AppendConfig implements Store. Like AppendRegister, the live version
// counters advance in the same critical section as the append, so a
// snapshot rotation captures counters consistent with the segments it
// supersedes.
func (d *Disk) AppendConfig(configVersion, rosterVersion uint32) error {
	d.mu.Lock()
	if err := d.usableLocked(); err != nil {
		d.mu.Unlock()
		return err
	}
	if err := d.enc.config(d.bw, configVersion, rosterVersion); err != nil {
		d.failLocked(err)
		d.mu.Unlock()
		return err
	}
	d.seq++
	wrote := d.enc.lastWrote
	if configVersion > d.cfgVer {
		d.cfgVer = configVersion
	}
	if rosterVersion > d.rosVer {
		d.rosVer = rosterVersion
	}
	sync := d.opts.Sync == SyncAlways
	d.mu.Unlock()
	d.m.walAppends.Inc()
	d.m.walBytes.Add(uint64(wrote))
	if sync {
		return d.Sync()
	}
	return nil
}

// AppendOpen implements Store.
func (d *Disk) AppendOpen(campaign uint32, round uint64, rosterSize, dRows, wCols int, seed uint64, keystream byte, configVersion, rosterVersion uint32) error {
	return d.append(func(w io.Writer) error {
		return d.enc.open(w, campaign, round, rosterSize, dRows, wCols, seed, keystream, configVersion, rosterVersion)
	})
}

// AppendReport implements Store. This is the ingestion hot path: the
// locking is inlined (no encode closure) and the encoder's scratch is
// reused, so a steady-state report append allocates nothing.
func (d *Disk) AppendReport(campaign uint32, round uint64, user, dRows, wCols int, n, seed uint64, keystream byte, configVersion uint32, cells []uint64) error {
	d.mu.Lock()
	if err := d.usableLocked(); err != nil {
		d.mu.Unlock()
		return err
	}
	if err := d.enc.Report(d.bw, campaign, round, user, dRows, wCols, n, seed, keystream, configVersion, cells); err != nil {
		d.failLocked(err)
		d.mu.Unlock()
		return err
	}
	d.seq++
	wrote := d.enc.lastWrote
	sync := d.opts.Sync == SyncAlways
	d.mu.Unlock()
	d.reports.Add(1)
	d.m.walAppends.Inc()
	d.m.walBytes.Add(uint64(wrote))
	if sync {
		return d.Sync()
	}
	return nil
}

// AppendAdjust implements Store.
func (d *Disk) AppendAdjust(campaign uint32, round uint64, user int, cells []uint64) error {
	return d.append(func(w io.Writer) error { return d.enc.adjust(w, campaign, round, user, cells) })
}

// AppendClose implements Store.
func (d *Disk) AppendClose(campaign uint32, round uint64) error {
	return d.append(func(w io.Writer) error { return d.enc.close(w, campaign, round) })
}

// AppendCampaign implements Store. Like AppendRegister, the live
// directory advances in the same critical section as the append, so a
// snapshot rotation captures a directory consistent with the segments
// it supersedes.
func (d *Disk) AppendCampaign(def []byte) error {
	d.mu.Lock()
	if err := d.usableLocked(); err != nil {
		d.mu.Unlock()
		return err
	}
	if err := d.enc.campaignDef(d.bw, def); err != nil {
		d.failLocked(err)
		d.mu.Unlock()
		return err
	}
	d.seq++
	wrote := d.enc.lastWrote
	if d.campaigns == nil {
		d.campaigns = make(map[uint32][]byte)
	}
	d.campaigns[binary.LittleEndian.Uint32(def)] = append([]byte(nil), def...)
	sync := d.opts.Sync == SyncAlways
	d.mu.Unlock()
	d.m.walAppends.Inc()
	d.m.walBytes.Add(uint64(wrote))
	if sync {
		return d.Sync()
	}
	return nil
}

// Sync implements Store: the group-committed durability barrier. The
// caller returns only once every record appended before the call is
// flushed (and, unless SyncOff, fsynced). One caller at a time leads
// the commit; everyone whose records it covered piggybacks.
func (d *Disk) Sync() error {
	d.mu.Lock()
	target := d.seq
	for {
		if err := d.usableLocked(); err != nil {
			d.mu.Unlock()
			return err
		}
		if d.synced >= target {
			d.mu.Unlock()
			return nil
		}
		if !d.syncing {
			break // become the leader
		}
		d.cond.Wait() // a leader is mid-fsync; it may cover us
	}
	d.syncing = true
	if err := d.bw.Flush(); err != nil {
		d.syncing = false
		d.failLocked(err)
		d.mu.Unlock()
		return err
	}
	covered := d.seq // flushed up to here; later appends buffer behind us
	f := d.f
	d.mu.Unlock()

	var err error
	if d.opts.Sync != SyncOff {
		start := time.Now()
		err = f.Sync()
		d.m.fsyncs.Inc()
		observeSince(d.m.fsyncLat, start)
	}

	d.mu.Lock()
	d.syncing = false
	if err != nil {
		d.failLocked(err)
	} else if covered > d.synced {
		d.synced = covered
	}
	d.cond.Broadcast()
	d.mu.Unlock()
	return err
}

// ShouldSnapshot implements Store.
func (d *Disk) ShouldSnapshot() bool {
	every := d.opts.snapshotEvery()
	return every > 0 && d.reports.Load() >= int64(every)
}

// Snapshot implements Store. The sequence is what makes the snapshot
// safe to combine with its WAL segment:
//
//  1. Rotate: flush and fsync the current segment, then point appends
//     at a fresh segment of the next generation. Every record in the
//     old segment is now both durable and — because the capture below
//     happens after rotation — guaranteed to be reflected in the
//     captured state.
//  2. Capture: run the owner's callback with no store lock held (it
//     takes the back-end's round locks; holding the WAL lock across it
//     could deadlock against reporters mid-append).
//  3. Publish: write the snapshot to a temp file, fsync, rename,
//     fsync the directory.
//  4. Prune: delete every segment and snapshot older than the new one.
//
// A crash anywhere in between leaves a recoverable directory: before
// the rename, recovery uses the previous snapshot plus both segments;
// after it, the new snapshot plus the fresh segment.
func (d *Disk) Snapshot(capture func() ([]*RoundState, error)) error {
	d.snapMu.Lock()
	defer d.snapMu.Unlock()
	start := time.Now()

	rot, err := d.rotate()
	if err != nil {
		return err
	}
	// The cadence counter resets at the rotation, not at success: if the
	// snapshot write below fails persistently (disk full, say), the next
	// attempt comes after another SnapshotEvery reports — a bounded
	// retry, not a rotation per report on an already-struggling disk.
	d.reports.Store(0)

	states, err := capture()
	if err != nil {
		return err // WAL already rotated: harmless, the next snapshot retries
	}
	if err := writeSnapshot(filepath.Join(d.dir, snapName(rot.newGen)), rot.roster, rot.campaigns, states, rot.cfgVer, rot.rosVer); err != nil {
		return err
	}
	// Retention holds the newest RetainSegments sealed segments back
	// from pruning; each cycle's floor rises past the previous cycle's
	// survivors, so the gap-stop below still sees a contiguous run.
	lo := rot.oldGen
	if k := uint64(d.opts.RetainSegments); k > 0 {
		if lo > k {
			lo -= k
		} else {
			lo = 0
		}
	}
	for g := lo; g > 0; g-- {
		// Contiguous generations below the new snapshot; stop at the
		// first gap (already pruned).
		p1 := filepath.Join(d.dir, walName(g))
		p2 := filepath.Join(d.dir, snapName(g))
		e1, e2 := os.Remove(p1), os.Remove(p2)
		if e1 == nil {
			d.m.segsPruned.Inc()
		}
		if os.IsNotExist(e1) && os.IsNotExist(e2) {
			break
		}
	}
	d.m.snapshots.Inc()
	observeSince(d.m.snapshotLat, start)
	return nil
}

// rotation is the result of a WAL rotation: the generation sealed and
// the one opened, plus a consistent copy of the roster and version
// counters as of the rotation point (what a snapshot of the sealed
// prefix must record).
type rotation struct {
	oldGen, newGen uint64
	roster         map[int][]byte
	campaigns      map[uint32][]byte
	cfgVer, rosVer uint32
}

// rotate seals the active segment — flush, fsync, swap appends to a
// fresh segment of the next generation — and returns the rotation
// point. Caller must hold snapMu (rotations are serialized; d.gen moves
// only here).
func (d *Disk) rotate() (rotation, error) {
	// Create (and fsync) the next segment before taking the store lock:
	// those are two fsyncs appends need not stall behind. snapMu
	// serializes rotations and Open is not concurrent, so d.gen cannot
	// move under us.
	d.mu.Lock()
	newGen := d.gen + 1
	d.mu.Unlock()
	newPath := filepath.Join(d.dir, walName(newGen))
	f, err := createSegment(newPath)
	if err != nil {
		return rotation{}, err
	}
	// If the rotation below fails, the pre-created segment must go away:
	// the generation has not advanced, so the next attempt would try to
	// create the same (O_EXCL) path.
	abort := func() {
		f.Close()
		os.Remove(newPath)
	}

	d.mu.Lock()
	for d.syncing {
		d.cond.Wait() // let an in-flight group commit finish with its file
	}
	if err := d.usableLocked(); err != nil {
		d.mu.Unlock()
		abort()
		return rotation{}, err
	}
	// The old segment's flush+fsync stays under the lock: the moment the
	// swap below publishes `synced = seq`, every record in the old
	// segment must actually be durable, and an append sneaking in
	// between an unlocked fsync and the swap would break that.
	if err := d.bw.Flush(); err != nil {
		d.failLocked(err)
		d.mu.Unlock()
		abort()
		return rotation{}, err
	}
	if d.opts.Sync != SyncOff {
		if err := d.f.Sync(); err != nil {
			d.failLocked(err)
			d.mu.Unlock()
			abort()
			return rotation{}, err
		}
	}
	old, oldGen := d.f, d.gen
	d.f, d.bw, d.gen = f, bufio.NewWriterSize(f, walBufSize), newGen
	d.synced = d.seq // the old segment is durable in full
	// Copy the roster (and the version counters) inside the rotation's
	// critical section: they then reflect exactly the register/config
	// records up to the rotation point, so pruning the old segments
	// cannot lose a registration or a version bump.
	roster := make(map[int][]byte, len(d.roster))
	for u, k := range d.roster {
		roster[u] = k
	}
	campaigns := make(map[uint32][]byte, len(d.campaigns))
	for id, def := range d.campaigns {
		campaigns[id] = def
	}
	cfgVer, rosVer := d.cfgVer, d.rosVer
	d.mu.Unlock()
	old.Close()
	d.m.segsSealed.Inc()
	return rotation{oldGen: oldGen, newGen: newGen, roster: roster, campaigns: campaigns, cfgVer: cfgVer, rosVer: rosVer}, nil
}

// Close implements Store: flushes, fsyncs, and releases the segment.
func (d *Disk) Close() error {
	err := d.Sync()
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	f := d.f
	d.cond.Broadcast()
	d.mu.Unlock()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if errors.Is(err, ErrStoreClosed) {
		err = nil
	}
	return err
}
