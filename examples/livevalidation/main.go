// Live-validation example: a compact Figure 4 run — classify every
// (user, ad) pair, push each classification down the CR / semantic-
// overlap / CB / F8 evaluation tree, resolve the UNKNOWN groups with the
// retargeting and indirect-OBA analyses, and report overall precision.
package main

import (
	"fmt"
	"log"

	"eyewnder/internal/experiments"
)

func main() {
	cfg := experiments.DefaultFig4Config()
	cfg.Sim.Users = 60
	cfg.Sim.Sites = 800
	cfg.Sim.Campaigns = 3000
	cfg.Sim.Weeks = 2
	cfg.CBThreshold = 3

	res, err := experiments.Fig4(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d (user, ad) observations — %d targeted, %d static campaigns delivered\n",
		res.TotalAds, res.TargetedAds, res.StaticAds)
	tb, nb := res.Tree.Targeted, res.Tree.NonTargeted
	fmt.Printf("\nclassified targeted (%d):\n", tb.N)
	fmt.Printf("  crawler also saw it (FP with high prob.)  %5d\n", tb.CR)
	fmt.Printf("  semantic overlap → CB agrees (likely TP)  %5d\n", tb.CB)
	fmt.Printf("  labellers agree / disagree                %5d / %d\n", tb.F8Agree, tb.F8Disagree)
	fmt.Printf("  UNKNOWN                                   %5d\n", tb.Unknown)
	fmt.Printf("classified non-targeted (%d):\n", nb.N)
	fmt.Printf("  crawler corroborates (TN, high prob.)     %5d\n", nb.CR)
	fmt.Printf("  semantic overlap → CB disagrees (lik. FN) %5d\n", nb.CB)
	fmt.Printf("  labellers agree / disagree                %5d / %d\n", nb.F8Agree, nb.F8Disagree)
	fmt.Printf("  UNKNOWN                                   %5d\n", nb.Unknown)
	fmt.Printf("\nunknown resolution: %d likely TP (retargeting / indirect OBA), %d likely FP\n",
		res.Resolution.LikelyTP, res.Resolution.LikelyFP)
	fmt.Printf("manual sample of %d non-targeted unknowns: %d confirmed, %d suspect\n",
		res.Resolution.SampledNonTargeted, res.Resolution.LikelyTN, res.Resolution.LikelyFN)
	fmt.Printf("\nprecision: likely-TP %.0f%%  likely-TN %.0f%%  (paper: 78%% / 87%%)\n",
		100*res.Summary.LikelyTPRate, 100*res.Summary.LikelyTNRate)
}
