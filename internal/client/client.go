// Package client implements the browser-extension analogue: the
// user-side component of Figure 1. It glues together
//
//   - ad detection on visited pages (package addetect),
//   - the local count-based state and classification (package detector),
//   - the privacy-preserving reporting pipeline (package privacy),
//
// and speaks the wire protocol to the back-end and the oprf-server.
// Everything privacy-sensitive — the browsing history, the per-ad domain
// counters, Domains_th,u — stays inside this process, exactly as the
// paper requires.
package client

import (
	crand "crypto/rand"
	"errors"
	"fmt"
	"math/big"
	"time"

	"eyewnder/internal/addetect"
	"eyewnder/internal/blind"
	"eyewnder/internal/detector"
	"eyewnder/internal/group"
	"eyewnder/internal/oprf"
	"eyewnder/internal/privacy"
	"eyewnder/internal/wire"
)

// Errors returned by the package.
var ErrNotRegistered = errors.New("client: extension not registered")

// BackendAPI is the subset of back-end operations the extension needs.
// *wire.Client-backed and in-process implementations both satisfy it.
// Roster returns the bulletin board together with the config/roster
// versions it is current at, in one atomic response — the extension
// pins its reports to exactly that negotiated state.
type BackendAPI interface {
	Register(user int, publicKey []byte) (rosterSize int, err error)
	Roster() (keys [][]byte, configVersion, rosterVersion uint32, err error)
	SubmitReport(rep *privacy.Report) error
	RoundStatus(round uint64) (reported int, missing []int, closed bool, err error)
	SubmitAdjustment(user int, round uint64, cells []uint64) error
	Threshold(round uint64) (float64, error)
	AuditAd(round uint64, adID uint64) (users uint64, err error)
}

// ConfigNegotiator is the optional interface a BackendAPI implements
// when it can fetch the server's negotiated round config — the wire
// adapter performs the Hello/Welcome handshake, the in-process adapter
// reads the back-end's CurrentConfig. When Options.Params is left zero,
// New requires it: the server, not a mirrored flag set, then decides
// the sketch geometry, ad-ID space, and blinding-keystream suite.
type ConfigNegotiator interface {
	NegotiateConfig() (privacy.RoundConfig, error)
}

// Extension is one user's eyeWnder instance.
type Extension struct {
	user    int
	cfg     detector.Config
	rcfg    privacy.RoundConfig
	priv    group.PrivateKey
	det     *addetect.Detector
	state   *detector.UserState
	backend BackendAPI
	eval    privacy.Evaluator
	oprfPub oprf.PublicKey

	pclient *privacy.Client // built after Join once the roster is known
	// adIDs caches ad key -> ad ID for audits.
	adIDs map[string]uint64
}

// Options configures a new Extension.
type Options struct {
	User     int
	Detector detector.Config
	// Params explicitly fixes the protocol geometry — the legacy
	// flag-agreement style, for tests and single-process deployments
	// that own both sides. Leave it zero to adopt whatever the backend
	// advertises (the backend must then implement ConfigNegotiator);
	// that is the deployment mode: zero protocol knobs on the client.
	Params privacy.Params
	Rules  *addetect.Ruleset
}

// New creates an extension for one user. backendAPI and eval connect it
// to the two servers; oprfPub is the oprf-server's public key. With a
// zero Options.Params the protocol config is negotiated from the
// backend before anything else — a server speaking an unknown blinding
// suite or group surfaces as ErrIncompatibleConfig here, not as a
// corrupted round later.
func New(opts Options, backendAPI BackendAPI, eval privacy.Evaluator, oprfPub oprf.PublicKey) (*Extension, error) {
	rcfg := privacy.UnversionedConfig(opts.Params, 0)
	if opts.Params.Suite == nil {
		neg, ok := backendAPI.(ConfigNegotiator)
		if !ok {
			return nil, errors.New("client: no Params given and the backend cannot negotiate a config")
		}
		c, err := neg.NegotiateConfig()
		if err != nil {
			return nil, err
		}
		rcfg = c
	}
	priv, err := rcfg.Params.Suite.GenerateKey(crand.Reader)
	if err != nil {
		return nil, fmt.Errorf("client: key generation: %w", err)
	}
	return &Extension{
		user:    opts.User,
		cfg:     opts.Detector,
		rcfg:    rcfg,
		priv:    priv,
		det:     addetect.New(opts.Rules),
		state:   detector.NewUserState(opts.Detector),
		backend: backendAPI,
		eval:    eval,
		oprfPub: oprfPub,
		adIDs:   make(map[string]uint64),
	}, nil
}

// User returns the extension's roster index.
func (e *Extension) User() int { return e.user }

// Config returns the round config the extension operates under: the
// negotiated (or explicitly given) protocol geometry, with the
// config/roster versions pinned at the last successful Join.
func (e *Extension) Config() privacy.RoundConfig { return e.rcfg }

// Register publishes the user's blinding key on the bulletin board.
func (e *Extension) Register() error {
	_, err := e.backend.Register(e.user, e.priv.PublicKey())
	return err
}

// Join downloads the roster and derives the pairwise blinding secrets,
// pinning the extension to the config version the board was served at:
// every report it produces from here carries that version, so if the
// roster changes (a re-registration bumps the version) its reports are
// cleanly rejected with privacy.ErrIncompatibleConfig — re-Join to
// adopt the new roster — instead of breaking blinding cancellation.
// Call it after every user has registered.
func (e *Extension) Join() error {
	roster, cv, rv, err := e.backend.Roster()
	if err != nil {
		return err
	}
	if e.rcfg.RosterSize > 0 && len(roster) != e.rcfg.RosterSize {
		return fmt.Errorf("%w: roster has %d slots, negotiated config says %d",
			privacy.ErrIncompatibleConfig, len(roster), e.rcfg.RosterSize)
	}
	for i, k := range roster {
		if k == nil {
			return fmt.Errorf("client: roster slot %d empty — not all users registered", i)
		}
	}
	party, err := blind.NewPartyKeystream(e.priv, roster, e.user, e.rcfg.Params.Keystream)
	if err != nil {
		return err
	}
	e.rcfg.Version, e.rcfg.RosterVersion, e.rcfg.RosterSize = cv, rv, len(roster)
	e.pclient = privacy.NewClient(e.rcfg, party, e.oprfPub, e.eval)
	return nil
}

// VisitPage processes one page view: detect the ads, update the local
// counters, and queue the ads for the next privacy-preserving report.
// It returns the detected ads.
func (e *Extension) VisitPage(domain, html string, at time.Time) ([]*addetect.Ad, error) {
	if e.pclient == nil {
		return nil, ErrNotRegistered
	}
	ads := e.det.Scan(html)
	for _, ad := range ads {
		key := ad.Key()
		e.state.Observe(key, domain, at)
		id, err := e.pclient.ObserveAd(key)
		if err != nil {
			return nil, err
		}
		e.adIDs[key] = id
	}
	return ads, nil
}

// ObserveAdDirect records an already-identified ad (used when impressions
// come from the simulator rather than rendered HTML).
func (e *Extension) ObserveAdDirect(adKey, domain string, at time.Time) error {
	if e.pclient == nil {
		return ErrNotRegistered
	}
	e.state.Observe(adKey, domain, at)
	id, err := e.pclient.ObserveAd(adKey)
	if err != nil {
		return err
	}
	e.adIDs[adKey] = id
	return nil
}

// SubmitReport blinds and uploads the round's sketch.
func (e *Extension) SubmitReport(round uint64) error {
	if e.pclient == nil {
		return ErrNotRegistered
	}
	rep, err := e.pclient.Report(round)
	if err != nil {
		return err
	}
	return e.backend.SubmitReport(rep)
}

// SubmitAdjustmentIfNeeded asks the back-end which users are missing and,
// if any, uploads this extension's second-round share. It returns the
// missing list.
func (e *Extension) SubmitAdjustmentIfNeeded(round uint64) ([]int, error) {
	if e.pclient == nil {
		return nil, ErrNotRegistered
	}
	_, missing, closed, err := e.backend.RoundStatus(round)
	if err != nil {
		return nil, err
	}
	if closed || len(missing) == 0 {
		return missing, nil
	}
	cms, err := e.rcfg.Params.NewSketch()
	if err != nil {
		return nil, err
	}
	adj, err := e.pclient.Adjust(round, cms.Cells(), missing)
	if err != nil {
		return nil, err
	}
	return missing, e.backend.SubmitAdjustment(e.user, round, adj)
}

// AuditAd performs the real-time audit of Section 5: given an ad key the
// user is looking at, fetch the global #Users estimate and the published
// Users_th, combine them with the local counters, and return the verdict.
func (e *Extension) AuditAd(adKey string, round uint64, now time.Time) (detector.Verdict, error) {
	if e.pclient == nil {
		return detector.Verdict{}, ErrNotRegistered
	}
	id, ok := e.adIDs[adKey]
	if !ok {
		// The ad was never observed by this user; resolve its ID now.
		var err error
		id, err = e.pclient.ObserveAd(adKey)
		if err != nil {
			return detector.Verdict{}, err
		}
		e.adIDs[adKey] = id
	}
	users, err := e.backend.AuditAd(round, id)
	if err != nil {
		return detector.Verdict{}, err
	}
	th, err := e.backend.Threshold(round)
	if err != nil {
		return detector.Verdict{}, err
	}
	return e.state.Classify(adKey, users, th, now), nil
}

// State exposes the local detector state (used by evaluation harnesses).
func (e *Extension) State() *detector.UserState { return e.state }

// --- wire-backed BackendAPI and Evaluator adapters ---

// WireBackend adapts a wire.Client to BackendAPI.
type WireBackend struct{ C *wire.Client }

// NegotiateConfig implements ConfigNegotiator: the Hello/Welcome
// handshake, with the advertised frame validated and converted into a
// privacy.RoundConfig. A server that predates the handshake, or one
// advertising a group or blinding suite this build does not implement,
// surfaces as (an error wrapping) privacy.ErrIncompatibleConfig.
func (w *WireBackend) NegotiateConfig() (privacy.RoundConfig, error) {
	cf, err := w.C.Handshake()
	if err != nil {
		return privacy.RoundConfig{}, fmt.Errorf("%w: %v", privacy.ErrIncompatibleConfig, err)
	}
	return RoundConfigFromFrame(cf)
}

// RoundConfigFromFrame validates a Welcome-frame config and converts it
// to the privacy layer's typed form.
func RoundConfigFromFrame(cf wire.ConfigFrame) (privacy.RoundConfig, error) {
	if cf.Group != wire.GroupP256 {
		return privacy.RoundConfig{}, fmt.Errorf("%w: unknown DH group %#02x", privacy.ErrIncompatibleConfig, cf.Group)
	}
	ks := blind.Keystream(cf.Keystream)
	if !ks.Valid() {
		return privacy.RoundConfig{}, fmt.Errorf("%w: unknown keystream suite %#02x", privacy.ErrIncompatibleConfig, cf.Keystream)
	}
	if cf.Epsilon <= 0 || cf.Delta <= 0 || cf.IDSpace == 0 {
		return privacy.RoundConfig{}, fmt.Errorf("%w: degenerate geometry (ε=%g δ=%g |A|=%d)",
			privacy.ErrIncompatibleConfig, cf.Epsilon, cf.Delta, cf.IDSpace)
	}
	return privacy.RoundConfig{
		Version:       cf.ConfigVersion,
		RosterVersion: cf.RosterVersion,
		RosterSize:    int(cf.RosterSize),
		Params: privacy.Params{
			Epsilon: cf.Epsilon, Delta: cf.Delta, IDSpace: cf.IDSpace,
			Suite: group.P256(), Keystream: ks,
		},
	}, nil
}

// Register implements BackendAPI.
func (w *WireBackend) Register(user int, publicKey []byte) (int, error) {
	var resp wire.RegisterResp
	err := w.C.Do(wire.TypeRegister, wire.RegisterReq{User: user, PublicKey: publicKey}, &resp)
	return resp.RosterSize, err
}

// Roster implements BackendAPI.
func (w *WireBackend) Roster() ([][]byte, uint32, uint32, error) {
	var resp wire.RosterResp
	if err := w.C.Do(wire.TypeRoster, struct{}{}, &resp); err != nil {
		return nil, 0, 0, err
	}
	return resp.PublicKeys, resp.ConfigVersion, resp.RosterVersion, nil
}

// SubmitReport implements BackendAPI: the sketch goes out as a binary
// report frame — its cell block one raw little-endian run the server
// reads directly into its pooled cell slices — with the blinding suite
// and config version in the preamble.
func (w *WireBackend) SubmitReport(rep *privacy.Report) error {
	cms := rep.Sketch
	return w.C.SubmitReportFrame(&wire.ReportFrame{
		User: rep.User, Campaign: rep.Campaign, Round: rep.Round,
		D: cms.Depth(), W: cms.Width(),
		N: cms.N(), Seed: cms.Seed(),
		Keystream:     byte(rep.Keystream),
		ConfigVersion: rep.ConfigVersion,
		Cells:         cms.FlatCells(),
	})
}

// RoundStatus implements BackendAPI.
func (w *WireBackend) RoundStatus(round uint64) (int, []int, bool, error) {
	var resp wire.RoundStatusResp
	err := w.C.Do(wire.TypeRoundStatus, wire.CloseRoundReq{Round: round}, &resp)
	return resp.Reported, resp.Missing, resp.Closed, err
}

// SubmitAdjustment implements BackendAPI.
func (w *WireBackend) SubmitAdjustment(user int, round uint64, cells []uint64) error {
	return w.C.Do(wire.TypeSubmitAdjust,
		wire.SubmitAdjustReq{User: user, Round: round, Cells: cells}, nil)
}

// Threshold implements BackendAPI.
func (w *WireBackend) Threshold(round uint64) (float64, error) {
	var resp wire.ThresholdResp
	err := w.C.Do(wire.TypeThreshold, wire.ThresholdReq{Round: round}, &resp)
	return resp.UsersTh, err
}

// AuditAd implements BackendAPI.
func (w *WireBackend) AuditAd(round uint64, adID uint64) (uint64, error) {
	var resp wire.AuditAdResp
	err := w.C.Do(wire.TypeAuditAd, wire.AuditAdReq{Round: round, AdID: adID}, &resp)
	return resp.Users, err
}

// WireEvaluator adapts a wire.Client to privacy.Evaluator (the
// oprf-server connection).
type WireEvaluator struct{ C *wire.Client }

// Evaluate implements privacy.Evaluator over the wire.
func (w *WireEvaluator) Evaluate(blinded *big.Int) (*big.Int, error) {
	var resp wire.OPRFEvaluateResp
	err := w.C.Do(wire.TypeOPRFEvaluate, wire.OPRFEvaluateReq{Blinded: blinded.Bytes()}, &resp)
	if err != nil {
		return nil, err
	}
	return new(big.Int).SetBytes(resp.Signed), nil
}

// FetchOPRFPublicKey downloads (N, e) from a wire oprf-server.
func FetchOPRFPublicKey(c *wire.Client) (oprf.PublicKey, error) {
	var resp wire.OPRFPublicKeyResp
	if err := c.Do(wire.TypeOPRFPublicKey, struct{}{}, &resp); err != nil {
		return oprf.PublicKey{}, err
	}
	return oprf.PublicKey{N: new(big.Int).SetBytes(resp.N), E: resp.E}, nil
}
