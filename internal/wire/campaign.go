package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"eyewnder/internal/campaign"
)

// The campaign directory exchange. A client that saw a nonzero
// Campaigns count in the Welcome fetches the directory: the full set of
// provisioned campaigns (IDs, geometry overrides, keystream suites,
// cadence) it may report into beyond the implicit campaign 0. The
// request is a fixed 24-byte top-bit frame — length-distinguishable
// from every other client→server binary frame (Hello is 16 bytes,
// flush markers 0, report frames ≥ 56) — so, like the Hello, it may
// arrive at any point in the conversation, including between rounds on
// a connection that is not currently streaming.
//
// Request payload:  magic "EYWCDIR1" (8) minRev(4) maxRev(4)
//                   reserved(8, zero)
// Response payload: magic "EYWCDIR2" (8) count(4) reserved(4, zero)
//                   then count canonical campaign encodings
//                   (campaign.AppendBinary), sorted by strictly
//                   increasing ID
//
// A server predating campaigns reads the request as a malformed frame
// and drops the connection — the same failure shape as a pre-handshake
// server answering a Hello, surfaced to callers as ErrNoDirectory.

const (
	campaignDirReqMagic  = "EYWCDIR1"
	campaignDirRespMagic = "EYWCDIR2"
	// campaignDirReqPayload is the fixed request size — the length is
	// the frame discriminator, so it can never collide with another
	// client→server binary frame size.
	campaignDirReqPayload = 24
	// campaignDirRespFixed is the response prefix before the entries.
	campaignDirRespFixed = 16
)

// Errors of the campaign directory exchange.
var (
	// ErrBadCampaignFrame marks a malformed directory request or
	// response frame.
	ErrBadCampaignFrame = errors.New("wire: malformed campaign directory frame")
	// ErrNoDirectory means the server dropped the connection instead of
	// answering — it predates the campaign directory.
	ErrNoDirectory = errors.New("wire: server does not serve a campaign directory")
)

// WriteCampaignDirRequest writes one directory request frame.
func WriteCampaignDirRequest(w io.Writer) error {
	var buf [4 + campaignDirReqPayload]byte
	binary.BigEndian.PutUint32(buf[0:], uint32(campaignDirReqPayload)|reportFlag)
	copy(buf[4:], campaignDirReqMagic)
	binary.LittleEndian.PutUint32(buf[12:], HandshakeRevision)
	binary.LittleEndian.PutUint32(buf[16:], HandshakeRevision)
	// buf[20:28] reserved, zero.
	_, err := w.Write(buf[:])
	return err
}

// ReadCampaignDirRequest reads a directory request payload (header word
// already consumed) and returns the client's revision range. Exported
// so the fuzz harness exercises exactly the decoder the server runs.
func ReadCampaignDirRequest(r io.Reader) (minRev, maxRev uint32, err error) {
	var buf [campaignDirReqPayload]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, 0, fmt.Errorf("%w: short payload: %v", ErrBadCampaignFrame, err)
	}
	if string(buf[:8]) != campaignDirReqMagic {
		return 0, 0, fmt.Errorf("%w: bad magic", ErrBadCampaignFrame)
	}
	minRev = binary.LittleEndian.Uint32(buf[8:])
	maxRev = binary.LittleEndian.Uint32(buf[12:])
	if minRev == 0 || maxRev < minRev {
		return 0, 0, fmt.Errorf("%w: revision range [%d, %d]", ErrBadCampaignFrame, minRev, maxRev)
	}
	return minRev, maxRev, nil
}

// AppendCampaignDirFrame appends one encoded directory response frame
// (header word included) to dst. The entries go out in the canonical
// order — strictly increasing ID — which the reader enforces.
func AppendCampaignDirFrame(dst []byte, list []campaign.Campaign) ([]byte, error) {
	payload := campaignDirRespFixed
	for i := range list {
		payload += list[i].EncodedSize()
	}
	if uint64(payload) > MaxFrame {
		return dst, ErrFrameTooLarge
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(payload)|reportFlag)
	dst = append(dst, hdr[:]...)
	dst = append(dst, campaignDirRespMagic...)
	var cnt [8]byte
	binary.LittleEndian.PutUint32(cnt[0:4], uint32(len(list)))
	// cnt[4:8] reserved, zero.
	dst = append(dst, cnt[:]...)
	var prev uint32
	for i := range list {
		if list[i].ID == 0 || (i > 0 && list[i].ID <= prev) {
			return dst, fmt.Errorf("%w: entries not in strictly increasing ID order", ErrBadCampaignFrame)
		}
		prev = list[i].ID
		dst = list[i].AppendBinary(dst)
	}
	return dst, nil
}

// ReadCampaignDirFrame reads one directory response frame (header word
// included) and returns the provisioned campaigns in ID order. Every
// entry is validated through the campaign registry's decoder, the
// count must match, and IDs must be strictly increasing — a malformed
// directory is rejected whole.
func ReadCampaignDirFrame(r io.Reader) ([]campaign.Campaign, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	word := binary.BigEndian.Uint32(hdr[:])
	n := word &^ reportFlag
	if word&reportFlag == 0 || n < campaignDirRespFixed || n > MaxFrame {
		return nil, fmt.Errorf("%w: header %#08x", ErrBadCampaignFrame, word)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("%w: short payload: %v", ErrBadCampaignFrame, err)
	}
	if string(body[:8]) != campaignDirRespMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadCampaignFrame)
	}
	count := binary.LittleEndian.Uint32(body[8:])
	rest := body[campaignDirRespFixed:]
	var list []campaign.Campaign
	var prev uint32
	for i := uint32(0); i < count; i++ {
		c, used, err := campaign.DecodeBinary(rest)
		if err != nil {
			return nil, fmt.Errorf("%w: entry %d: %v", ErrBadCampaignFrame, i, err)
		}
		if c.ID > maxWireCampaign {
			return nil, fmt.Errorf("%w: entry %d: id %d exceeds wire cap", ErrBadCampaignFrame, i, c.ID)
		}
		if i > 0 && c.ID <= prev {
			return nil, fmt.Errorf("%w: entries not in strictly increasing ID order", ErrBadCampaignFrame)
		}
		prev = c.ID
		list = append(list, c)
		rest = rest[used:]
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadCampaignFrame, len(rest))
	}
	return list, nil
}

// answerCampaignDir consumes a directory request payload (header word
// already read by serveConn) and responds with the provisioned
// directory — empty when the server has none. A malformed request is a
// framing error: the stream position is unknown, so the connection
// drops.
func (s *Server) answerCampaignDir(conn net.Conn, wmu *sync.Mutex) error {
	if _, _, err := ReadCampaignDirRequest(conn); err != nil {
		return err
	}
	var list []campaign.Campaign
	if s.opts.Campaigns != nil {
		list = s.opts.Campaigns()
	}
	frame, err := AppendCampaignDirFrame(nil, list)
	if err != nil {
		return err
	}
	wmu.Lock()
	defer wmu.Unlock()
	_, err = conn.Write(frame)
	return err
}

// CampaignDirectory performs the directory exchange and returns the
// provisioned campaigns beyond campaign 0 (possibly none). It shares
// the connection's request/response discipline with Do and Handshake
// (ErrStreaming while a ReportStream is open). Against a server
// predating campaigns the connection is dropped; that surfaces as
// ErrNoDirectory — callers should treat the connection as dead
// afterwards.
func (c *Client) CampaignDirectory() ([]campaign.Campaign, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil, ErrClosed
	}
	if c.streaming {
		return nil, ErrStreaming
	}
	if err := WriteCampaignDirRequest(c.conn); err != nil {
		return nil, err
	}
	list, err := ReadCampaignDirFrame(c.conn)
	if err != nil && !errors.Is(err, ErrBadCampaignFrame) && isConnDropped(err) {
		return nil, ErrNoDirectory
	}
	return list, err
}
