package logit

import "fmt"

// Builder assembles a dummy-coded design matrix from categorical
// observations, mirroring R's model-matrix behaviour the paper relies on:
// each factor's first declared level is the base and gets no column.
type Builder struct {
	factors []factor
	rows    []map[string]string
	ys      []float64
}

type factor struct {
	name   string
	levels []string // levels[0] is the base
	index  map[string]int
}

// NewBuilder declares the model's factors in order. The first level of
// each factor is its base level.
func NewBuilder() *Builder { return &Builder{} }

// Factor declares a categorical predictor with its levels (base first).
func (b *Builder) Factor(name string, levels ...string) *Builder {
	idx := make(map[string]int, len(levels))
	for i, l := range levels {
		idx[l] = i
	}
	b.factors = append(b.factors, factor{name: name, levels: levels, index: idx})
	return b
}

// Add records one observation: the factor levels and the binary outcome.
func (b *Builder) Add(levels map[string]string, outcome bool) error {
	for _, f := range b.factors {
		lv, ok := levels[f.name]
		if !ok {
			return fmt.Errorf("%w: missing factor %q", ErrBadFactor, f.name)
		}
		if _, ok := f.index[lv]; !ok {
			return fmt.Errorf("%w: factor %q has no level %q", ErrBadFactor, f.name, lv)
		}
	}
	row := make(map[string]string, len(levels))
	for k, v := range levels {
		row[k] = v
	}
	b.rows = append(b.rows, row)
	y := 0.0
	if outcome {
		y = 1
	}
	b.ys = append(b.ys, y)
	return nil
}

// N returns the number of observations added.
func (b *Builder) N() int { return len(b.rows) }

// Matrix materializes the design matrix (intercept first), the outcome
// vector, and the coefficient names.
func (b *Builder) Matrix() (X [][]float64, y []float64, names []string) {
	names = []string{"(intercept)"}
	type colKey struct{ f, level int }
	var cols []colKey
	for fi, f := range b.factors {
		for li := 1; li < len(f.levels); li++ {
			names = append(names, f.name+":"+f.levels[li])
			cols = append(cols, colKey{fi, li})
		}
	}
	X = make([][]float64, len(b.rows))
	for i, row := range b.rows {
		r := make([]float64, 1+len(cols))
		r[0] = 1
		for ci, ck := range cols {
			f := b.factors[ck.f]
			if f.index[row[f.name]] == ck.level {
				r[1+ci] = 1
			}
		}
		X[i] = r
	}
	return X, b.ys, names
}

// Fit builds the matrix and fits the model, attaching coefficient names.
func (b *Builder) Fit() (*Model, error) {
	if len(b.rows) == 0 {
		return nil, ErrNoData
	}
	X, y, names := b.Matrix()
	m, err := Fit(X, y, 0, 0)
	if err != nil {
		return nil, err
	}
	m.Names = names
	return m, nil
}

// Row produces a design row for prediction at the given factor levels —
// the machinery behind Figure 5's per-level predicted probabilities.
func (b *Builder) Row(levels map[string]string) ([]float64, error) {
	row := []float64{1}
	for _, f := range b.factors {
		lv, ok := levels[f.name]
		if !ok {
			return nil, fmt.Errorf("%w: missing factor %q", ErrBadFactor, f.name)
		}
		li, ok := f.index[lv]
		if !ok {
			return nil, fmt.Errorf("%w: factor %q has no level %q", ErrBadFactor, f.name, lv)
		}
		for l := 1; l < len(f.levels); l++ {
			if l == li {
				row = append(row, 1)
			} else {
				row = append(row, 0)
			}
		}
	}
	return row, nil
}
