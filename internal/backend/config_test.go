package backend

import (
	"errors"
	"testing"

	"eyewnder/internal/detector"
	"eyewnder/internal/privacy"
	"eyewnder/internal/store"
)

// stampedFrames builds one round's reports and converts them to wire
// frames stamped with the given config version.
func stampedFrames(t *testing.T, params privacy.Params, users int, round uint64, cv uint32) []*privacy.Report {
	t.Helper()
	reports := buildReports(t, params, users, round)
	for _, r := range reports {
		r.ConfigVersion = cv
	}
	return reports
}

// A fresh back-end starts at config/roster version 1 and bumps both on
// every board *change*; rounds pin the version current at their open.
func TestConfigVersionLifecycle(t *testing.T) {
	params := storeTestParams()
	b := newStoreBackend(t, params, 4, nil)
	cfg := b.CurrentConfig()
	if cfg.Version != 1 || cfg.RosterVersion != 1 || cfg.RosterSize != 4 {
		t.Fatalf("fresh config = %+v", cfg)
	}
	for u := 0; u < 4; u++ {
		if _, err := b.Register(u, []byte{byte(u), 1}); err != nil {
			t.Fatal(err)
		}
	}
	cfg = b.CurrentConfig()
	if cfg.Version != 5 || cfg.RosterVersion != 5 {
		t.Fatalf("after 4 registrations: %+v", cfg)
	}

	// Reports stamped with the current version fold; stale ones bounce.
	reports := stampedFrames(t, params, 4, 1, cfg.Version)
	if err := b.SubmitReport(reports[0]); err != nil {
		t.Fatal(err)
	}
	stale := stampedFrames(t, params, 4, 1, cfg.Version-1)[1]
	if err := b.SubmitReport(stale); !errors.Is(err, privacy.ErrIncompatibleConfig) {
		t.Fatalf("stale submit = %v, want ErrIncompatibleConfig", err)
	}
	if err := b.ConsumeReport(frameOf(stale)); !errors.Is(err, privacy.ErrIncompatibleConfig) {
		t.Fatalf("stale streamed submit = %v, want ErrIncompatibleConfig", err)
	}

	// A round keeps the version it opened under even after a bump: the
	// old cohort finishes round 1, the new version owns round 2.
	if _, err := b.Register(2, []byte{99, 99}); err != nil { // key change: bump to 6
		t.Fatal(err)
	}
	if v := b.CurrentConfig().Version; v != 6 {
		t.Fatalf("version after key change = %d", v)
	}
	if err := b.SubmitReport(reports[1]); err != nil { // still v5, round 1 pinned v5
		t.Fatal(err)
	}
	newRound := stampedFrames(t, params, 4, 2, 5)[0] // stale cohort into a v6 round
	if err := b.SubmitReport(newRound); !errors.Is(err, privacy.ErrIncompatibleConfig) {
		t.Fatalf("old-cohort report into new round = %v, want ErrIncompatibleConfig", err)
	}
}

// A mid-deployment roster bump must be recovered byte-identically from
// the WAL: the restarted back-end advertises the same versions, its
// recovered rounds keep their pins, and a stale-version report is
// rejected after the restart exactly as before it.
func TestRosterBumpRecoveredFromWAL(t *testing.T) {
	const users = 4
	params := storeTestParams()
	dir := t.TempDir()
	st1, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b1 := newStoreBackend(t, params, users, st1)
	for u := 0; u < users; u++ {
		if _, err := b1.Register(u, []byte{byte(u), 7}); err != nil {
			t.Fatal(err)
		}
	}
	v0 := b1.CurrentConfig().Version // 5 after four fresh registrations
	// Round 1 opens pinned at v0.
	if err := b1.ConsumeReport(frameOf(stampedFrames(t, params, users, 1, v0)[0])); err != nil {
		t.Fatal(err)
	}
	// The mid-deployment bump: user 1 re-enrolls with a new key.
	if _, err := b1.Register(1, []byte{200, 200}); err != nil {
		t.Fatal(err)
	}
	v1 := b1.CurrentConfig().Version
	if v1 != v0+1 {
		t.Fatalf("bump: %d -> %d", v0, v1)
	}
	if err := b1.SyncReports(); err != nil {
		t.Fatal(err)
	}
	// Crash: no graceful close of b1/st1.

	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	b2 := newStoreBackend(t, params, users, st2)
	cfg := b2.CurrentConfig()
	if cfg.Version != v1 || cfg.RosterVersion != v1 {
		t.Fatalf("recovered config = %+v, want version %d", cfg, v1)
	}
	if keys, _, _ := b2.Roster(); keys[1][0] != 200 {
		t.Fatalf("recovered roster key = %v", keys[1])
	}
	// Round 1 recovered with its v0 pin: the old cohort still fits, the
	// new version does not.
	if err := b2.ConsumeReport(frameOf(stampedFrames(t, params, users, 1, v0)[1])); err != nil {
		t.Fatal(err)
	}
	if err := b2.ConsumeReport(frameOf(stampedFrames(t, params, users, 1, v1)[2])); !errors.Is(err, privacy.ErrIncompatibleConfig) {
		t.Fatalf("new-version report into recovered v%d round = %v", v0, err)
	}
	// A fresh round opens at the recovered current version; the stale
	// cohort is rejected there, live and identically to pre-crash.
	if err := b2.ConsumeReport(frameOf(stampedFrames(t, params, users, 2, v0)[0])); !errors.Is(err, privacy.ErrIncompatibleConfig) {
		t.Fatalf("stale report into post-recovery round = %v, want ErrIncompatibleConfig", err)
	}
	if err := b2.ConsumeReport(frameOf(stampedFrames(t, params, users, 2, v1)[0])); err != nil {
		t.Fatalf("current-version report into post-recovery round = %v", err)
	}
}

// closeFullRound submits every user's report for the round and closes it.
func closeFullRound(t *testing.T, b *Backend, params privacy.Params, users int, round uint64) {
	t.Helper()
	cv := b.CurrentConfig().Version
	for _, r := range stampedFrames(t, params, users, round, cv) {
		if err := b.ConsumeReport(frameOf(r)); err != nil {
			t.Fatalf("round %d user %d: %v", round, r.User, err)
		}
	}
	if _, _, err := b.CloseRound(round); err != nil {
		t.Fatalf("close %d: %v", round, err)
	}
}

// RetainRounds ages closed rounds out of memory once their Users_th has
// been served for the configured horizon, live and across recovery.
func TestRetainRoundsEviction(t *testing.T) {
	const users = 2
	params := storeTestParams()
	dir := t.TempDir()
	st1, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b1, err := New(Config{
		Params: params, Users: users, UsersEstimator: detector.EstimatorMean,
		Store: st1, RetainRounds: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b1.Close() })
	for round := uint64(1); round <= 4; round++ {
		closeFullRound(t, b1, params, users, round)
	}
	// Horizon 2 behind round 4: rounds 1 and 2 are gone, 3 and 4 serve.
	for round, want := range map[uint64]error{1: ErrUnknownRound, 2: ErrUnknownRound, 3: nil, 4: nil} {
		if _, err := b1.Threshold(round); !errors.Is(err, want) && err != want {
			t.Fatalf("live Threshold(%d) = %v, want %v", round, err, want)
		}
	}
	// A retired round must NOT be silently resurrected by the
	// round-creating paths: a late report or status poll for round 1
	// gets ErrUnknownRound, never a fresh empty round (which would
	// re-admit users who already reported and publish a second
	// Users_th for a served round).
	if _, _, _, err := b1.RoundStatus(1); !errors.Is(err, ErrUnknownRound) {
		t.Fatalf("RoundStatus on retired round = %v, want ErrUnknownRound", err)
	}
	late := stampedFrames(t, params, users, 1, b1.CurrentConfig().Version)[0]
	if err := b1.ConsumeReport(frameOf(late)); !errors.Is(err, ErrUnknownRound) {
		t.Fatalf("late report into retired round = %v, want ErrUnknownRound", err)
	}
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery re-applies the horizon: aged-out rounds stay gone even
	// though the WAL still carries them.
	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	b2, err := New(Config{
		Params: params, Users: users, UsersEstimator: detector.EstimatorMean,
		Store: st2, RetainRounds: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b2.Close() })
	for round, want := range map[uint64]error{1: ErrUnknownRound, 2: ErrUnknownRound, 3: nil, 4: nil} {
		if _, err := b2.Threshold(round); !errors.Is(err, want) && err != want {
			t.Fatalf("recovered Threshold(%d) = %v, want %v", round, err, want)
		}
	}

	// The still-retained rounds answer identically to the first process.
	th1, _ := b1.Threshold(3)
	th2, _ := b2.Threshold(3)
	if diff := th1 - th2; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("retained round diverged: %v vs %v", th1, th2)
	}
}

// An unclosed straggler below the horizon is never evicted: it has not
// served a threshold yet.
func TestRetainRoundsKeepsOpenRounds(t *testing.T) {
	const users = 2
	params := storeTestParams()
	b, err := New(Config{
		Params: params, Users: users, UsersEstimator: detector.EstimatorMean, RetainRounds: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	// Round 1 stays open (one report only); rounds 2..4 close.
	cv := b.CurrentConfig().Version
	if err := b.ConsumeReport(frameOf(stampedFrames(t, params, users, 1, cv)[0])); err != nil {
		t.Fatal(err)
	}
	for round := uint64(2); round <= 4; round++ {
		closeFullRound(t, b, params, users, round)
	}
	if _, err := b.Threshold(2); !errors.Is(err, ErrUnknownRound) {
		t.Fatalf("Threshold(2) = %v, want ErrUnknownRound", err)
	}
	reported, _, closed, err := b.RoundStatus(1)
	if err != nil || closed || reported != 1 {
		t.Fatalf("open straggler: reported=%d closed=%v err=%v", reported, closed, err)
	}
}

// Sanity: frameOf must carry the config version (the wire preamble does).
func TestFrameOfCarriesConfigVersion(t *testing.T) {
	params := storeTestParams()
	r := stampedFrames(t, params, 2, 1, 7)[0]
	if f := frameOf(r); f.ConfigVersion != 7 {
		t.Fatalf("frameOf dropped the config version: got %d", f.ConfigVersion)
	}
}
