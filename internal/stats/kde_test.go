package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestSilvermanBandwidth(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	h := SilvermanBandwidth(xs)
	// For N(0,1) with n=1000, h ≈ 0.9 * 1 * 1000^-0.2 ≈ 0.226.
	if h < 0.15 || h > 0.3 {
		t.Fatalf("bandwidth %v outside plausible range for std normal", h)
	}
	if SilvermanBandwidth(nil) != 1 {
		t.Fatal("empty sample should fall back to bandwidth 1")
	}
	if SilvermanBandwidth([]float64{5, 5, 5}) != 1 {
		t.Fatal("constant sample should fall back to bandwidth 1")
	}
}

func TestKDEIntegratesToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = rng.NormFloat64()*2 + 3
	}
	k, err := NewKDE(xs, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Trapezoid integration across a wide support.
	const lo, hi = -15.0, 21.0
	const n = 4000
	step := (hi - lo) / n
	var integral float64
	for i := 0; i <= n; i++ {
		w := step
		if i == 0 || i == n {
			w = step / 2
		}
		integral += k.PDF(lo+float64(i)*step) * w
	}
	if math.Abs(integral-1) > 0.01 {
		t.Fatalf("KDE integral = %v, want ~1", integral)
	}
}

func TestKDEPeaksNearMode(t *testing.T) {
	xs := []float64{4, 4, 4, 4, 4, 1, 9}
	k, err := NewKDE(xs, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if k.PDF(4) <= k.PDF(1) || k.PDF(4) <= k.PDF(9) {
		t.Fatal("density should peak near the repeated value")
	}
	if k.Bandwidth() != 0.5 {
		t.Fatalf("Bandwidth = %v", k.Bandwidth())
	}
}

func TestKDEEmptyAndCurveErrors(t *testing.T) {
	if _, err := NewKDE(nil, 1); err != ErrEmpty {
		t.Fatalf("NewKDE(nil) err = %v", err)
	}
	k, _ := NewKDE([]float64{1, 2}, 1)
	if _, _, err := k.Curve(0, 10, 1); err == nil {
		t.Fatal("Curve with 1 point should error")
	}
	if _, _, err := k.Curve(5, 5, 10); err == nil {
		t.Fatal("Curve with hi <= lo should error")
	}
	xs, ys, err := k.Curve(0, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(xs) != 4 || len(ys) != 4 {
		t.Fatalf("curve lengths %d/%d", len(xs), len(ys))
	}
	if xs[0] != 0 || xs[3] != 3 {
		t.Fatalf("curve endpoints %v", xs)
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0.5, 1.5, 1.6, 2.5, -10, 99}
	h, err := NewHistogram(xs, 0, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	// -10 clamps into bin 0, 99 clamps into bin 2.
	want := []int{2, 2, 2}
	for i, c := range h.Counts {
		if c != want[i] {
			t.Fatalf("Counts = %v, want %v", h.Counts, want)
		}
	}
	if h.Total() != 6 {
		t.Fatalf("Total = %d", h.Total())
	}
	d := h.Density()
	var integral float64
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	for _, v := range d {
		integral += v * width
	}
	if math.Abs(integral-1) > 1e-12 {
		t.Fatalf("density integral = %v", integral)
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(nil, 0, 1, 0); err == nil {
		t.Fatal("0 bins should error")
	}
	if _, err := NewHistogram(nil, 2, 1, 3); err == nil {
		t.Fatal("hi <= lo should error")
	}
	h, err := NewHistogram(nil, 0, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range h.Density() {
		if v != 0 {
			t.Fatal("empty histogram density should be zero")
		}
	}
}
