//go:build unix

package main

import (
	"os"
	"os/signal"
	"syscall"
)

// notifyPromote delivers SIGUSR1 — the operator's follower-promotion
// trigger — on the returned channel.
func notifyPromote() <-chan os.Signal {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGUSR1)
	return ch
}
