// Package vec provides the bulk uint64-vector arithmetic shared by the
// privacy hot path: cell-wise addition and subtraction modulo 2⁶⁴ over the
// flat counter slices of package sketch and the blinding/adjustment
// vectors of package blind.
//
// All operations wrap around, matching the additive-shares-of-zero
// arithmetic of the protocol. Large vectors are split into chunks and
// processed by up to runtime.GOMAXPROCS workers; small vectors stay on the
// caller's goroutine so the common ε = δ = 0.001 sketch (≈19k cells) pays
// no synchronization cost unless it profits from it.
//
// The element kernels themselves are selected once at init (see
// dispatch.go): checked-in AVX2 (amd64) or NEON (arm64) assembly when
// the host supports it, and the portable generic Go loops otherwise —
// or always, under the `purego` build tag or the EYEWNDER_NOSIMD
// environment override. Every path computes bit-identical results;
// the equivalence tests assert it.
package vec

import (
	"runtime"
	"sync"
)

// parallelThreshold is the element count above which Add/Sub fan out to
// worker goroutines. Below it the goroutine hand-off costs more than the
// adds it would save.
const parallelThreshold = 1 << 15

// minChunk keeps worker chunks large enough to amortize scheduling.
const minChunk = 1 << 13

// Add adds src into dst element-wise modulo 2⁶⁴. The slices must have the
// same length (the caller validates; mismatch panics).
func Add(dst, src []uint64) {
	if len(dst) != len(src) {
		panic("vec: length mismatch")
	}
	if len(dst) < parallelThreshold {
		addImpl(dst, src)
		return
	}
	parallel(len(dst), minChunk, func(lo, hi int) { addImpl(dst[lo:hi], src[lo:hi]) })
}

// Sub subtracts src from dst element-wise modulo 2⁶⁴. The slices must have
// the same length.
func Sub(dst, src []uint64) {
	if len(dst) != len(src) {
		panic("vec: length mismatch")
	}
	if len(dst) < parallelThreshold {
		subImpl(dst, src)
		return
	}
	parallel(len(dst), minChunk, func(lo, hi int) { subImpl(dst[lo:hi], src[lo:hi]) })
}

// addGeneric is the portable scalar kernel, unrolled 4-wide; after the
// bounds hint the compiler keeps the loop check-free. It is both the
// fallback when no SIMD kernel is selected and the reference the
// equivalence tests compare the assembly kernels against.
func addGeneric(dst, src []uint64) {
	_ = dst[:len(src)]
	n := len(src) &^ 3
	for i := 0; i < n; i += 4 {
		dst[i] += src[i]
		dst[i+1] += src[i+1]
		dst[i+2] += src[i+2]
		dst[i+3] += src[i+3]
	}
	for i := n; i < len(src); i++ {
		dst[i] += src[i]
	}
}

func subGeneric(dst, src []uint64) {
	_ = dst[:len(src)]
	n := len(src) &^ 3
	for i := 0; i < n; i += 4 {
		dst[i] -= src[i]
		dst[i+1] -= src[i+1]
		dst[i+2] -= src[i+2]
		dst[i+3] -= src[i+3]
	}
	for i := n; i < len(src); i++ {
		dst[i] -= src[i]
	}
}

// parallel splits [0, n) into per-worker half-open ranges of at least min
// elements and runs fn on each concurrently. Ranges never overlap, so fn
// may write its slice section without locking.
func parallel(n, min int, fn func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if max := n / min; workers > max {
		workers = max
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// Parallel exposes the range splitter for callers that need chunked
// parallelism over index spaces other than a slice (e.g. the back-end's
// ad-ID enumeration). minPerWorker bounds how finely the range is split;
// fn receives non-overlapping [lo, hi) ranges and runs concurrently.
func Parallel(n, minPerWorker int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if minPerWorker < 1 {
		minPerWorker = 1
	}
	parallel(n, minPerWorker, fn)
}
