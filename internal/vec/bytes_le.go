//go:build amd64 || arm64 || 386 || arm || riscv64 || loong64 || mipsle || mips64le || ppc64le || wasm

package vec

import "unsafe"

// On little-endian architectures the in-memory layout of a []uint64 is
// exactly its little-endian wire serialization, so wire payloads can be
// read from (or written to) the slice's backing memory directly — the
// zero-copy fast path of the streaming report reader.

// AsBytes returns the little-endian byte view over v's backing array and
// true. Reading wire bytes into the view (or writing the view out) IS
// the (de)serialization; no intermediate buffer exists. The view aliases
// v: it is valid only while v is, and must not be resliced beyond its
// length.
func AsBytes(v []uint64) ([]byte, bool) {
	if len(v) == 0 {
		return nil, true
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), 8*len(v)), true
}

// PutLE encodes src into dst as little-endian uint64s. dst must hold
// 8*len(src) bytes.
func PutLE(dst []byte, src []uint64) {
	if len(src) == 0 {
		return
	}
	copy(dst, unsafe.Slice((*byte)(unsafe.Pointer(&src[0])), 8*len(src)))
}

// GetLE decodes 8*len(dst) little-endian bytes from src into dst.
func GetLE(dst []uint64, src []byte) {
	if len(dst) == 0 {
		return
	}
	copy(unsafe.Slice((*byte)(unsafe.Pointer(&dst[0])), 8*len(dst)), src)
}
