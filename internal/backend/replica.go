package backend

import (
	"errors"
	"fmt"

	"eyewnder/internal/campaign"
	"eyewnder/internal/privacy"
	"eyewnder/internal/store"
	"eyewnder/internal/vec"
)

// ApplyEvent folds one decoded WAL event from the primary's stream into
// a replica back-end. It is the live twin of the store's recovery
// applier and enforces the same acceptance rules: a record the rules
// reject — a duplicate report, a report into a closed round, a stale
// config version — is *skipped*, never applied, which is what makes the
// stream idempotent across snapshot overlap and follower restarts. The
// two appliers must agree exactly, because promotion swaps one for the
// other: the follower's warm state comes from ApplyEvent, the promoted
// state from re-running recovery over the same bytes, and the
// kill-the-primary e2e holds the two to byte-identical counts.
//
// Errors are reserved for streams the replica must not follow at all:
// an event from a different deployment (geometry, roster size, or
// blinding suite mismatch — the same refusals restore makes), or a
// close of a round that cannot finalize. The caller treats any error as
// fatal to replication, not as something to skip.
//
// ApplyEvent is not safe for concurrent use with itself (the follower
// is the single writer); it is safe against concurrent readers.
func (b *Backend) ApplyEvent(ev store.Event) error {
	if !b.cfg.Replica {
		return errors.New("backend: ApplyEvent on a non-replica back-end")
	}
	switch e := ev.(type) {
	case *store.RegisterEvent:
		if e.User < 0 || e.User >= b.cfg.Users {
			return fmt.Errorf("backend: replicated registration for user %d, roster size %d — primary from a different deployment?", e.User, b.cfg.Users)
		}
		b.mu.Lock()
		b.roster[e.User] = append([]byte(nil), e.PublicKey...)
		b.mu.Unlock()
		// No version bump here: the primary logs the bump as its own
		// recConfig record (in the same critical section as the
		// register), and applying it twice would run the counters ahead
		// of the primary's.

	case *store.ConfigEvent:
		b.mu.Lock()
		b.configVersion = max32(b.configVersion, e.ConfigVersion)
		b.rosterVersion = max32(b.rosterVersion, e.RosterVersion)
		b.mu.Unlock()

	case *store.CampaignEvent:
		// A campaign provisioned on the primary: resolve it into a live
		// campaignState (no store write — the follower's mirror already
		// carries the primary's record). Last write wins, exactly like
		// the recovery applier. A definition the replica cannot resolve
		// is a stream it must not follow.
		c, _, err := campaign.DecodeBinary(e.Def)
		if err != nil || c.ID != e.ID {
			return fmt.Errorf("backend: replicated campaign %d: bad definition: %v", e.ID, err)
		}
		cs, err := b.newCampaignState(c)
		if err != nil {
			return fmt.Errorf("backend: replicated campaign %d: %w", e.ID, err)
		}
		b.mu.Lock()
		b.campaigns[c.ID] = cs
		b.mu.Unlock()

	case *store.OpenEvent:
		params := b.cfg.Params
		cells := b.cells
		if e.Campaign != 0 {
			b.mu.Lock()
			cs, ok := b.campaigns[e.Campaign]
			b.mu.Unlock()
			if !ok {
				// Unlike an unknown round, an unknown campaign is a
				// stream-order violation: the primary logs the campaign
				// record before any round it opens in it.
				return fmt.Errorf("backend: replicated open of round %d in unknown campaign %d", e.Round, e.Campaign)
			}
			params = cs.params
			cells = cs.cells
		}
		if e.D*e.W != cells {
			return fmt.Errorf("backend: replicated round %d has %dx%d cells, campaign %d wants %d — primary from a different geometry?", e.Round, e.D, e.W, e.Campaign, cells)
		}
		if e.RosterSize != b.cfg.Users {
			return fmt.Errorf("backend: replicated round %d expects %d users, config says %d", e.Round, e.RosterSize, b.cfg.Users)
		}
		if e.Keystream != byte(params.Keystream) {
			return fmt.Errorf("backend: replicated round %d used keystream suite %#02x, campaign %d says %#02x", e.Round, e.Keystream, e.Campaign, byte(params.Keystream))
		}
		b.mu.Lock()
		defer b.mu.Unlock()
		b.configVersion = max32(b.configVersion, e.ConfigVersion)
		b.rosterVersion = max32(b.rosterVersion, e.RosterVersion)
		if _, ok := b.rounds[roundKey{e.Campaign, e.Round}]; ok {
			return nil // already open (snapshot overlap): idempotent
		}
		rcfg := privacy.RoundConfig{
			Version:       e.ConfigVersion,
			RosterVersion: e.RosterVersion,
			RosterSize:    b.cfg.Users,
			Params:        params,
		}
		agg, err := privacy.RestoreAggregatorStripes(rcfg, e.Round, b.cfg.MergeStripes,
			make([]uint64, cells), 0, e.Seed, make([]bool, e.RosterSize))
		if err != nil {
			return err
		}
		b.rounds[roundKey{e.Campaign, e.Round}] = &round{agg: agg, adjusts: make(map[int][]uint64)}

	case *store.ReportEvent:
		r, ok := b.lookupRound(e.Campaign, e.Round)
		if !ok {
			return nil // unknown round: the recovery applier skips too
		}
		r.mu.RLock()
		defer r.mu.RUnlock()
		if r.closed {
			return nil
		}
		cells := make([]uint64, len(e.Cells)/8)
		vec.GetLE(cells, e.Cells)
		// ReserveCells enforces exactly the acceptance rules the recovery
		// applier mirrors — duplicate, out-of-roster, layout/seed/suite
		// mismatch, stale config version. A refusal means the record is
		// already reflected (overlap) or would have been rejected live:
		// skip, don't fail.
		ks := r.agg.Config().Params.Keystream
		if e.Keystream != byte(ks) {
			return nil
		}
		if err := r.agg.ReserveCells(e.User, e.D, e.W, e.N, e.Seed, ks, e.ConfigVersion, len(cells)); err != nil {
			return nil
		}
		r.agg.FoldReserved(cells)

	case *store.AdjustEvent:
		r, ok := b.lookupRound(e.Campaign, e.Round)
		if !ok {
			return nil
		}
		r.mu.Lock()
		defer r.mu.Unlock()
		if r.closed {
			return nil
		}
		d, w, _ := r.agg.Layout()
		if e.User < 0 || e.User >= b.cfg.Users || len(e.Cells) != 8*d*w {
			return nil
		}
		cells := make([]uint64, d*w)
		vec.GetLE(cells, e.Cells)
		r.adjusts[e.User] = cells // last write wins, like the recovery applier

	case *store.CloseEvent:
		r, ok := b.lookupRound(e.Campaign, e.Round)
		if !ok {
			return nil
		}
		r.mu.Lock()
		defer r.mu.Unlock()
		if r.closed {
			return nil
		}
		// Finalize from the replicated aggregate: the inputs are the
		// primary's own logged records, so the counts come out
		// byte-identical to the ones the primary published.
		if err := b.finalizeLocked(r); err != nil {
			return fmt.Errorf("backend: replicated close of round %d: %w", e.Round, err)
		}
		r.closed = true

	default:
		return fmt.Errorf("backend: unknown replicated event %T", ev)
	}
	return nil
}
