// Package crawler implements the evaluation crawler of Figure 1: a
// clean-profile browser (empty cache, no cookies, no history) that visits
// audited pages on the back-end's instruction and records the ads it
// encounters. Because the crawler has no profile, any ad it sees cannot
// have been behaviourally targeted — which is exactly what makes its
// observations ground truth for the Figure 4 evaluation: an ad classified
// targeted by eyeWnder but also seen by the crawler is a false positive
// with high probability (FP(CR)); one classified non-targeted and seen by
// the crawler is a true negative (TN(CR)).
package crawler

import (
	"fmt"
	"sync"

	"eyewnder/internal/addetect"
	"eyewnder/internal/wire"
)

// Fetcher renders the page a clean-profile visit to a site would receive.
// The simulation backs it with adsim.CrawlerVisit + RenderPage; a live
// deployment would drive a headless browser.
type Fetcher interface {
	FetchClean(site int) (html string, err error)
}

// FetcherFunc adapts a function to Fetcher.
type FetcherFunc func(site int) (string, error)

// FetchClean implements Fetcher.
func (f FetcherFunc) FetchClean(site int) (string, error) { return f(site) }

// Crawler visits sites with a clean profile and accumulates the CR
// dataset.
type Crawler struct {
	fetch Fetcher
	det   *addetect.Detector

	mu sync.Mutex
	// seen[adKey] = set of sites where the crawler saw the ad.
	seen map[string]map[int]bool
	// visits counts pages fetched.
	visits int
}

// New builds a crawler over the given fetcher; nil rules selects the
// default filter list.
func New(fetch Fetcher, rules *addetect.Ruleset) *Crawler {
	return &Crawler{
		fetch: fetch,
		det:   addetect.New(rules),
		seen:  make(map[string]map[int]bool),
	}
}

// Visit fetches one site with a clean profile and records the detected
// ads. It returns their keys.
func (c *Crawler) Visit(site int) ([]string, error) {
	html, err := c.fetch.FetchClean(site)
	if err != nil {
		return nil, fmt.Errorf("crawler: fetching site %d: %w", site, err)
	}
	ads := c.det.Scan(html)
	keys := make([]string, 0, len(ads))
	c.mu.Lock()
	defer c.mu.Unlock()
	c.visits++
	for _, ad := range ads {
		key := ad.Key()
		keys = append(keys, key)
		sites := c.seen[key]
		if sites == nil {
			sites = make(map[int]bool)
			c.seen[key] = sites
		}
		sites[site] = true
	}
	return keys, nil
}

// Seen reports whether the crawler has encountered the ad anywhere — the
// CR-membership test of the evaluation tree.
func (c *Crawler) Seen(adKey string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.seen[adKey]) > 0
}

// Dataset returns the full CR dataset: ad key → sites where it appeared.
func (c *Crawler) Dataset() map[string][]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string][]int, len(c.seen))
	for key, sites := range c.seen {
		for s := range sites {
			out[key] = append(out[key], s)
		}
	}
	return out
}

// Visits returns how many pages the crawler fetched.
func (c *Crawler) Visits() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.visits
}

// Handler exposes the crawler over the wire protocol so the back-end can
// instruct visits (Figure 1, arrow 3) and receive the collected ads
// (arrow 4).
func (c *Crawler) Handler() wire.Handler {
	return func(m *wire.Msg) (string, interface{}, error) {
		switch m.Type {
		case wire.TypeCrawlVisit:
			var req wire.CrawlVisitReq
			if err := m.Decode(&req); err != nil {
				return "", nil, err
			}
			keys, err := c.Visit(req.Site)
			if err != nil {
				return "", nil, err
			}
			return wire.TypeCrawlVisitOK, wire.CrawlVisitResp{AdKeys: keys}, nil
		}
		return "", nil, fmt.Errorf("crawler: unknown message %q", m.Type)
	}
}

// Serve starts the crawler's wire endpoint.
func (c *Crawler) Serve(addr string) (*wire.Server, error) {
	return wire.Serve(addr, c.Handler())
}
