package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"eyewnder/internal/churn"
	"eyewnder/internal/obs"
	"eyewnder/internal/vec"
)

// The churn harness: a seeded, deterministic population lifecycle —
// arrivals, permanent dropouts, mid-round darkness, re-registrations,
// stream reconnects — replayed against a real back-end, with every
// round's finalized counts byte-compared to a trace oracle. See
// internal/churn for the mechanics; this file is the CLI and the
// machine-readable summary CI consumes.
type churnConfig struct {
	users      int
	rounds     int
	seed       uint64
	ads        int
	idSpace    uint64
	window     int
	pDark      float64
	pDrop      float64
	pArrive    float64
	pRereg     float64
	adjustWait time.Duration
	campaign   uint32
	dataDir    string
	artifacts  string
	scrape     string
}

// churnSummary is the final stdout line (single-line JSON), the
// machine-readable run result: CI double-runs the same seed and
// asserts the digests are identical, and jq-checks that every round
// either closed through the adjustment path or was skipped empty.
type churnSummary struct {
	Schema    string  `json:"schema"`
	Users     int     `json:"users"`
	Rounds    int     `json:"rounds"`
	Seed      uint64  `json:"seed"`
	Reports   int     `json:"reports"`
	Shares    int     `json:"shares"`
	Adjusted  int     `json:"adjusted_rounds"`
	Skipped   int     `json:"skipped_rounds"`
	Durable   bool    `json:"durable"`
	VecKernel string  `json:"vec_kernel"`
	MaxProcs  int     `json:"maxprocs"`
	Seconds   float64 `json:"seconds"`
	Digest    string  `json:"digest"`
	// Metrics holds the run's /metrics counter deltas when -scrape was
	// set (see loadSummary.Metrics).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// runChurn generates the seeded trace, replays it, and prints one
// human line per round plus the JSON summary line.
func runChurn(cfg churnConfig) error {
	ccfg := churn.Config{
		Users:       cfg.users,
		Rounds:      cfg.rounds,
		Seed:        cfg.seed,
		AdsPerUser:  cfg.ads,
		IDSpace:     cfg.idSpace,
		Window:      cfg.window,
		PDark:       cfg.pDark,
		PDrop:       cfg.pDrop,
		PArrive:     cfg.pArrive,
		PRereg:      cfg.pRereg,
		AdjustWait:  cfg.adjustWait,
		Campaign:    cfg.campaign,
		DataDir:     cfg.dataDir,
		ArtifactDir: cfg.artifacts,
	}
	// With -scrape the harness owns a registry the replayed back-end
	// registers in, serves it on the admin endpoint during the run, and
	// folds the counter deltas into the summary line.
	var reg *obs.Registry
	var before map[string]float64
	if cfg.scrape != "" {
		reg = obs.New()
		ccfg.Metrics = reg
		admin, err := obs.ServeAdmin(cfg.scrape, obs.AdminOptions{Registry: reg})
		if err != nil {
			return fmt.Errorf("-scrape listen: %w", err)
		}
		defer admin.Close()
		fmt.Printf("churn: admin endpoint on %s\n", admin.Addr())
		before = reg.Snapshot()
	}
	fmt.Printf("churn: %d users × %d rounds, seed %d%s\n",
		cfg.users, cfg.rounds, cfg.seed, durabilityNote(cfg.dataDir))
	start := time.Now()
	res, err := churn.Run(ccfg, func(format string, args ...interface{}) {
		fmt.Printf("  "+format+"\n", args...)
	})
	if err != nil {
		// The partial summary still goes out: CI's failure path uploads
		// it next to the trace/diff artifacts.
		if res != nil {
			printChurnSummary(cfg, res, time.Since(start), reg, before)
		}
		return err
	}
	printChurnSummary(cfg, res, time.Since(start), reg, before)
	return nil
}

func printChurnSummary(cfg churnConfig, res *churn.Result, elapsed time.Duration, reg *obs.Registry, before map[string]float64) {
	sum := churnSummary{
		Schema:    "eyewnder-churn/v1",
		Users:     cfg.users,
		Rounds:    len(res.Rounds),
		Seed:      cfg.seed,
		Reports:   res.Reports,
		Shares:    res.Shares,
		Durable:   cfg.dataDir != "",
		VecKernel: vec.Active(),
		MaxProcs:  runtime.GOMAXPROCS(0),
		Seconds:   elapsed.Seconds(),
		Digest:    res.Digest,
	}
	for _, rr := range res.Rounds {
		if rr.Adjusted {
			sum.Adjusted++
		}
		if rr.Skipped {
			sum.Skipped++
		}
	}
	if reg != nil {
		sum.Metrics = metricsDelta(before, reg.Snapshot())
	}
	if line, err := json.Marshal(sum); err == nil {
		os.Stdout.Write(append(line, '\n'))
	}
}
