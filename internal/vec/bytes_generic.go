//go:build !(amd64 || arm64 || 386 || arm || riscv64 || loong64 || mipsle || mips64le || ppc64le || wasm)

package vec

import "encoding/binary"

// Portable fallback for big-endian (or unlisted) architectures: no raw
// byte view exists, so callers read into a byte buffer and decode with
// GetLE (one pass over pre-sliced 8-byte windows).

// AsBytes reports that no zero-copy byte view is available on this
// architecture.
func AsBytes(v []uint64) ([]byte, bool) { return nil, false }

// PutLE encodes src into dst as little-endian uint64s.
func PutLE(dst []byte, src []uint64) {
	for i, v := range src {
		binary.LittleEndian.PutUint64(dst[8*i:], v)
	}
}

// GetLE decodes 8*len(dst) little-endian bytes from src into dst.
func GetLE(dst []uint64, src []byte) {
	for i := range dst {
		dst[i] = binary.LittleEndian.Uint64(src[8*i:])
	}
}
