package privacy

import (
	"crypto/rand"
	"crypto/rsa"
	"fmt"
	"sync"
	"testing"

	"eyewnder/internal/blind"
	"eyewnder/internal/group"
	"eyewnder/internal/oprf"
)

// Shared fixtures: RSA keygen and roster setup dominate test time.
var (
	fixOnce sync.Once
	fixSrv  *oprf.Server
	fixRos  *blind.Roster
)

func fixtures(t testing.TB) (*oprf.Server, *blind.Roster) {
	fixOnce.Do(func() {
		key, err := rsa.GenerateKey(rand.Reader, 1024)
		if err != nil {
			panic(err)
		}
		fixSrv, err = oprf.NewServerFromKey(key)
		if err != nil {
			panic(err)
		}
		fixRos, err = blind.NewRoster(group.P256(), 6, rand.Reader)
		if err != nil {
			panic(err)
		}
	})
	return fixSrv, fixRos
}

// smallParams keeps the sketch and ID space small so tests run fast while
// exercising the whole protocol.
func smallParams() Params {
	return Params{Epsilon: 0.01, Delta: 0.01, IDSpace: 5000, Suite: group.P256()}
}

func newClients(t testing.TB, params Params) []*Client {
	srv, ros := fixtures(t)
	clients := make([]*Client, len(ros.Parties))
	for i, p := range ros.Parties {
		clients[i] = NewClient(UnversionedConfig(params, 0), p, srv.PublicKey(), srv)
	}
	return clients
}

func TestEndToEndFullParticipation(t *testing.T) {
	params := smallParams()
	clients := newClients(t, params)
	const round = 1

	// Ground truth: which users see which ads.
	ads := map[string][]int{
		"https://ads.example.com/targeted-1": {0},          // targeted: 1 user
		"https://ads.example.com/brand-1":    {0, 1, 2, 3}, // broad static
		"https://ads.example.com/brand-2":    {1, 2, 4, 5},
		"https://ads.example.com/targeted-2": {3},
	}
	ids := map[string]uint64{}
	agg, err := NewAggregator(UnversionedConfig(params, len(clients)), round)
	if err != nil {
		t.Fatal(err)
	}
	for url, users := range ads {
		for _, u := range users {
			id, err := clients[u].ObserveAd(url)
			if err != nil {
				t.Fatal(err)
			}
			ids[url] = id
			// Repeat impressions must not inflate the user count.
			if _, err := clients[u].ObserveAd(url); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, c := range clients {
		r, err := c.Report(round)
		if err != nil {
			t.Fatal(err)
		}
		if err := agg.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	final, err := agg.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	for url, users := range ads {
		got := QueryUsers(final, ids[url])
		want := uint64(len(users))
		// CMS may overestimate slightly but never underestimates.
		if got < want || got > want+2 {
			t.Errorf("#Users(%s) = %d, want ~%d", url, got, want)
		}
	}
}

func TestAdIDConsistencyAcrossClients(t *testing.T) {
	clients := newClients(t, smallParams())
	id0, err := clients[0].ObserveAd("https://ads.example.com/x")
	if err != nil {
		t.Fatal(err)
	}
	id1, err := clients[1].ObserveAd("https://ads.example.com/x")
	if err != nil {
		t.Fatal(err)
	}
	if id0 != id1 {
		t.Fatal("same URL mapped to different ad IDs for different users")
	}
}

func TestOPRFCachedPerUniqueAd(t *testing.T) {
	clients := newClients(t, smallParams())
	c := clients[0]
	start := c.OPRFExchanges
	for i := 0; i < 5; i++ {
		if _, err := c.ObserveAd("https://ads.example.com/same"); err != nil {
			t.Fatal(err)
		}
	}
	if c.OPRFExchanges != start+1 {
		t.Fatalf("OPRF exchanges = %d, want %d (mapping is once per unique ad)",
			c.OPRFExchanges, start+1)
	}
}

func TestReportClearsRound(t *testing.T) {
	clients := newClients(t, smallParams())
	c := clients[0]
	if _, err := c.ObserveAd("https://a.example/1"); err != nil {
		t.Fatal(err)
	}
	if c.SeenCount() != 1 {
		t.Fatalf("SeenCount = %d", c.SeenCount())
	}
	if _, err := c.Report(1); err != nil {
		t.Fatal(err)
	}
	if c.SeenCount() != 0 {
		t.Fatal("Report did not reset the round's observations")
	}
}

func TestIndividualReportIsBlinded(t *testing.T) {
	// A single blinded report must not reveal the underlying counts: its
	// cells should look nothing like a plain sketch of the same ads.
	params := smallParams()
	clients := newClients(t, params)
	c := clients[0]
	if _, err := c.ObserveAd("https://ads.example.com/secret"); err != nil {
		t.Fatal(err)
	}
	r, err := c.Report(1)
	if err != nil {
		t.Fatal(err)
	}
	zeros := 0
	for _, v := range r.Sketch.FlatCells() {
		if v == 0 {
			zeros++
		}
	}
	// A plain single-ad sketch is almost all zeros; a blinded one is
	// (pseudo)uniform, so zero cells should be essentially absent.
	if frac := float64(zeros) / float64(r.Sketch.Cells()); frac > 0.01 {
		t.Fatalf("blinded report has %.1f%% zero cells; looks unblinded", 100*frac)
	}
}

func TestMissingClientsRecovery(t *testing.T) {
	params := smallParams()
	clients := newClients(t, params)
	const round = 4
	agg, err := NewAggregator(UnversionedConfig(params, len(clients)), round)
	if err != nil {
		t.Fatal(err)
	}
	// Users 2 and 5 never report.
	absent := map[int]bool{2: true, 5: true}
	for i, c := range clients {
		url := fmt.Sprintf("https://ads.example.com/u%d", i)
		if _, err := c.ObserveAd(url); err != nil {
			t.Fatal(err)
		}
		if _, err := c.ObserveAd("https://ads.example.com/common"); err != nil {
			t.Fatal(err)
		}
		if absent[i] {
			continue
		}
		r, err := c.Report(round)
		if err != nil {
			t.Fatal(err)
		}
		if err := agg.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	// Finalizing before adjustment must fail — the aggregate is noise.
	if _, err := agg.Finalize(); err != ErrNotFinalizable {
		t.Fatalf("premature Finalize err = %v", err)
	}
	missing := agg.Missing()
	if len(missing) != 2 || missing[0] != 2 || missing[1] != 5 {
		t.Fatalf("Missing = %v", missing)
	}
	cells, _ := params.NewSketch()
	var adjs [][]uint64
	for i, c := range clients {
		if absent[i] {
			continue
		}
		adj, err := c.Adjust(round, cells.Cells(), missing)
		if err != nil {
			t.Fatal(err)
		}
		adjs = append(adjs, adj)
	}
	if err := agg.ApplyAdjustments(adjs...); err != nil {
		t.Fatal(err)
	}
	final, err := agg.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	// The common ad was seen by the 4 reporters (absent users' sightings
	// are lost, which is correct).
	commonID := clients[0].idCache["https://ads.example.com/common"]
	got := QueryUsers(final, commonID)
	if got < 4 || got > 6 {
		t.Fatalf("#Users(common) = %d, want ~4", got)
	}
}

func TestAggregatorValidation(t *testing.T) {
	params := smallParams()
	clients := newClients(t, params)
	agg, err := NewAggregator(UnversionedConfig(params, len(clients)), 9)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := agg.Finalize(); err != ErrNoReports {
		t.Fatalf("empty Finalize err = %v", err)
	}
	r, err := clients[0].Report(9)
	if err != nil {
		t.Fatal(err)
	}
	if err := agg.Add(r); err != nil {
		t.Fatal(err)
	}
	dup, err := clients[0].Report(9)
	if err != nil {
		t.Fatal(err)
	}
	if err := agg.Add(dup); err != ErrDuplicate {
		t.Fatalf("duplicate err = %v", err)
	}
	wrongRound, err := clients[1].Report(8)
	if err != nil {
		t.Fatal(err)
	}
	if err := agg.Add(wrongRound); err != ErrRoundMismatch {
		t.Fatalf("round mismatch err = %v", err)
	}
	bad := &Report{User: 99, Round: 9, Sketch: r.Sketch}
	if err := agg.Add(bad); err == nil {
		t.Fatal("out-of-roster user accepted")
	}
	if agg.Reported() != 1 {
		t.Fatalf("Reported = %d", agg.Reported())
	}
}

// A report blinded under a different keystream suite than the round's
// must be rejected: its pairwise terms would not cancel, and the
// corruption would otherwise be silent (the cells look uniformly random
// either way).
func TestAggregatorRejectsKeystreamMismatch(t *testing.T) {
	params := smallParams()
	clients := newClients(t, params)
	agg, err := NewAggregator(UnversionedConfig(params, len(clients)), 3)
	if err != nil {
		t.Fatal(err)
	}
	r, err := clients[0].Report(3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Keystream != params.Keystream {
		t.Fatalf("client stamped suite %v, params say %v", r.Keystream, params.Keystream)
	}
	mismatched := *r
	mismatched.Keystream = blind.KeystreamAESCTR
	if err := agg.Add(&mismatched); err != ErrKeystreamMismatch {
		t.Fatalf("mismatched suite err = %v", err)
	}
	// The streamed path enforces the same invariant.
	cms := r.Sketch
	err = agg.AddCells(r.User, cms.Depth(), cms.Width(), cms.N(), cms.Seed(),
		blind.KeystreamAESCTR, 0, cms.FlatCells())
	if err != ErrKeystreamMismatch {
		t.Fatalf("mismatched streamed suite err = %v", err)
	}
	// The matching suite is accepted.
	if err := agg.Add(r); err != nil {
		t.Fatal(err)
	}
}

// An AES-CTR deployment must work end to end: params carry the suite,
// clients blind under it, the aggregator accepts it, and the aggregate
// unblinds to the same counts.
func TestEndToEndAESCTRSuite(t *testing.T) {
	params := smallParams()
	params.Keystream = blind.KeystreamAESCTR
	srv, _ := fixtures(t)
	roster, err := blind.NewRosterKeystream(group.P256(), 4, rand.Reader, blind.KeystreamAESCTR)
	if err != nil {
		t.Fatal(err)
	}
	clients := make([]*Client, len(roster.Parties))
	for i, p := range roster.Parties {
		clients[i] = NewClient(UnversionedConfig(params, 0), p, srv.PublicKey(), srv)
	}
	const round = 2
	agg, err := NewAggregator(UnversionedConfig(params, len(clients)), round)
	if err != nil {
		t.Fatal(err)
	}
	adURL := "https://ads.example.com/aes-suite"
	var wantID uint64
	for _, c := range clients {
		id, err := c.ObserveAd(adURL)
		if err != nil {
			t.Fatal(err)
		}
		wantID = id
		r, err := c.Report(round)
		if err != nil {
			t.Fatal(err)
		}
		if r.Keystream != blind.KeystreamAESCTR {
			t.Fatalf("report suite = %v", r.Keystream)
		}
		if err := agg.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	final, err := agg.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if got := QueryUsers(final, wantID); got < uint64(len(clients)) {
		t.Fatalf("unblinded #Users = %d, want >= %d", got, len(clients))
	}
}

func TestUserCountsEnumeration(t *testing.T) {
	params := smallParams()
	clients := newClients(t, params)
	const round = 12
	agg, _ := NewAggregator(UnversionedConfig(params, len(clients)), round)
	urls := []string{"https://a.example/1", "https://a.example/2"}
	for _, c := range clients[:3] {
		for _, u := range urls {
			if _, err := c.ObserveAd(u); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, c := range clients[3:] {
		// These clients saw nothing; they still report (empty sketches).
		_ = c
	}
	for _, c := range clients {
		r, err := c.Report(round)
		if err != nil {
			t.Fatal(err)
		}
		if err := agg.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	final, err := agg.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	counts := UserCounts(final, params)
	// Both ads should appear with count ~3; sketch collisions may add a
	// few phantom IDs with small counts but the bulk must be the 2 ads.
	found := 0
	for _, u := range urls {
		id := clients[0].idCache[u]
		if c, ok := counts[id]; ok && c >= 3 {
			found++
		}
	}
	if found != 2 {
		t.Fatalf("enumeration found %d/2 ads; counts=%v", found, counts)
	}
}

func TestOverheadAccounting(t *testing.T) {
	params := DefaultParams()
	cms, err := params.NewSketch()
	if err != nil {
		t.Fatal(err)
	}
	// Section 7.1: with ε = δ = 0.001 and 4-byte cells the sketch is in
	// the ~200 KB regime and dwarfs the ~3.5 KB cleartext report of the
	// average user (35 ads × 100-char URLs).
	sketchKB := float64(cms.SizeBytes(4)) / 1024
	if sketchKB < 50 || sketchKB > 300 {
		t.Fatalf("sketch = %.0f KB, outside paper regime", sketchKB)
	}
	clear := CleartextReportBytes(35, 100)
	if clear != 3500 {
		t.Fatalf("cleartext = %d B", clear)
	}
}

func TestDefaultParams(t *testing.T) {
	p := DefaultParams()
	if p.Epsilon != 0.001 || p.Delta != 0.001 || p.IDSpace != 100000 {
		t.Fatalf("DefaultParams = %+v", p)
	}
	if p.Suite.Name() != "P256" {
		t.Fatalf("suite = %s", p.Suite.Name())
	}
}

func TestAdIDStableAndInRange(t *testing.T) {
	p := smallParams()
	out := make([]byte, 32)
	for i := range out {
		out[i] = byte(i * 7)
	}
	id := p.AdID(out)
	if id >= p.IDSpace {
		t.Fatalf("AdID %d outside space %d", id, p.IDSpace)
	}
	if id != p.AdID(out) {
		t.Fatal("AdID not deterministic")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("short OPRF output did not panic")
		}
	}()
	p.AdID([]byte{1, 2})
}
