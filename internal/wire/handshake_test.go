package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// testConfigFrame is the advertisement used by handshake tests.
func testConfigFrame() ConfigFrame {
	return ConfigFrame{
		ConfigVersion: 5,
		RosterVersion: 3,
		RosterSize:    100,
		Epsilon:       0.001,
		Delta:         0.01,
		IDSpace:       100000,
		Keystream:     1,
		Group:         GroupP256,
		Estimator:     2,
		AckBatch:      16,
	}
}

// The full exchange over a live server: Hello out, Welcome back, every
// config field intact — and the connection stays usable for JSON
// requests and streamed reports afterwards.
func TestHandshakeRoundTrip(t *testing.T) {
	sink := &countSink{}
	srv, err := ServeWithSinkOpts("127.0.0.1:0", echoHandler, sink, StreamOpts{
		Config: testConfigFrame,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	got, err := cli.Handshake()
	if err != nil {
		t.Fatalf("Handshake: %v", err)
	}
	if got != testConfigFrame() {
		t.Fatalf("config round trip: got %+v want %+v", got, testConfigFrame())
	}
	// The connection is not consumed by the handshake: a JSON request, a
	// second handshake (a client re-checking the config between rounds),
	// and a streamed report all still work.
	if err := cli.Do("echo", struct{}{}, nil); err != nil {
		t.Fatalf("Do after handshake: %v", err)
	}
	if _, err := cli.Handshake(); err != nil {
		t.Fatalf("second Handshake: %v", err)
	}
	if err := cli.SubmitReportFrame(testFrame(8)); err != nil {
		t.Fatalf("SubmitReportFrame after handshake: %v", err)
	}
	if sink.n != 1 {
		t.Fatalf("sink folded %d frames, want 1", sink.n)
	}
}

// countSink counts consumed frames.
type countSink struct{ n int }

func (s *countSink) ConsumeReport(*ReportFrame) error { s.n++; return nil }

// A server with no config source (e.g. a bare oprf-server) answers the
// handshake with WelcomeNoConfig, surfaced as ErrNoConfig.
func TestHandshakeNoConfig(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.Handshake(); !errors.Is(err, ErrNoConfig) {
		t.Fatalf("Handshake against config-less server = %v, want ErrNoConfig", err)
	}
	// The connection survives a no-config answer.
	if err := cli.Do("echo", struct{}{}, nil); err != nil {
		t.Fatalf("Do after no-config handshake: %v", err)
	}
}

// A new client against a server predating the handshake: the old server
// treats the Hello as a malformed report frame and hangs up; the client
// must surface ErrNoHandshake instead of hanging or returning garbage.
func TestHandshakeAgainstPreHandshakeServer(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go func() {
		conn, err := lis.Accept()
		if err != nil {
			return
		}
		// The old serveConn: read the header word, see the report flag
		// with a sub-preamble length, treat it as a malformed frame, and
		// drop the connection — exactly what a pre-handshake release does.
		var hdr [4]byte
		io.ReadFull(conn, hdr[:])
		conn.Close()
	}()
	cli, err := Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.Handshake(); !errors.Is(err, ErrNoHandshake) {
		t.Fatalf("Handshake against old server = %v, want ErrNoHandshake", err)
	}
}

// A Hello whose revision range does not include the server's is
// answered WelcomeIncompatible (and the connection survives).
func TestHandshakeRevisionMismatch(t *testing.T) {
	srv, err := ServeWithSinkOpts("127.0.0.1:0", echoHandler, nil, StreamOpts{
		Config: testConfigFrame,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := net.DialTimeout("tcp", srv.Addr(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A future client demanding revisions [7, 9].
	var buf [4 + helloPayload]byte
	binary.BigEndian.PutUint32(buf[0:], uint32(helloPayload)|reportFlag)
	copy(buf[4:], helloMagic)
	binary.LittleEndian.PutUint32(buf[12:], 7)
	binary.LittleEndian.PutUint32(buf[16:], 9)
	if _, err := conn.Write(buf[:]); err != nil {
		t.Fatal(err)
	}
	status, _, err := ReadWelcomeFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if status != WelcomeIncompatible {
		t.Fatalf("status = %d, want WelcomeIncompatible", status)
	}
}

// A Hello with a corrupt magic is a framing error: the stream position
// is unknown, so the server must drop the connection.
func TestHelloBadMagicDropsConnection(t *testing.T) {
	srv, err := ServeWithSinkOpts("127.0.0.1:0", echoHandler, nil, StreamOpts{
		Config: testConfigFrame,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := net.DialTimeout("tcp", srv.Addr(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var buf [4 + helloPayload]byte
	binary.BigEndian.PutUint32(buf[0:], uint32(helloPayload)|reportFlag)
	copy(buf[4:], "NOTHELLO")
	if _, err := conn.Write(buf[:]); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	var one [1]byte
	if _, err := conn.Read(one[:]); err != io.EOF {
		t.Fatalf("read after bad hello = %v, want EOF (dropped connection)", err)
	}
}

// The Welcome decoder rejects wrong headers and magics.
func TestReadWelcomeFrameMalformed(t *testing.T) {
	// Wrong payload length in the header word.
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(12)|reportFlag)
	if _, _, err := ReadWelcomeFrame(bytes.NewReader(hdr[:])); !errors.Is(err, ErrBadWelcomeFrame) {
		t.Fatalf("short welcome = %v", err)
	}
	// Right length, wrong magic.
	var good bytes.Buffer
	if err := WriteWelcomeFrame(&good, WelcomeOK, testConfigFrame()); err != nil {
		t.Fatal(err)
	}
	raw := good.Bytes()
	copy(raw[4:], "NOTWELC1")
	if _, _, err := ReadWelcomeFrame(bytes.NewReader(raw)); !errors.Is(err, ErrBadWelcomeFrame) {
		t.Fatalf("bad-magic welcome = %v", err)
	}
}

// FuzzReadHelloFrame hammers the server-side Hello decoder with
// arbitrary bytes: it must never panic and must classify every input as
// either a valid revision range or ErrBadHelloFrame — the server drops
// the connection on the latter, so misclassification is a denial of
// service either way.
func FuzzReadHelloFrame(f *testing.F) {
	var seed bytes.Buffer
	if err := WriteHelloFrame(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes()[4:]) // payload only, as the server reads it
	f.Add([]byte{})
	f.Add([]byte(helloMagic))
	bad := append([]byte(helloMagic), 0, 0, 0, 0, 0, 0, 0, 0)
	f.Add(bad)
	f.Fuzz(func(t *testing.T, data []byte) {
		minRev, maxRev, err := ReadHelloFrame(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrBadHelloFrame) {
				t.Fatalf("unexpected error class: %v", err)
			}
			return
		}
		if minRev == 0 || maxRev < minRev {
			t.Fatalf("accepted impossible revision range [%d, %d]", minRev, maxRev)
		}
		// An accepted payload must re-encode to the same 16 bytes through
		// the reference writer layout.
		var out [helloPayload]byte
		copy(out[:], helloMagic)
		binary.LittleEndian.PutUint32(out[8:], minRev)
		binary.LittleEndian.PutUint32(out[12:], maxRev)
		if !bytes.Equal(out[:], data[:helloPayload]) {
			t.Fatal("hello round-trip mismatch")
		}
	})
}
