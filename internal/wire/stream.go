package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"

	"eyewnder/internal/vec"
)

// Streamed report frames: the binary fast path for the one message that
// dominates back-end traffic, backend.submit_report. The JSON path costs
// three full copies of the ~150 KB sketch per report (base64 text inside
// the envelope, the decoded []byte, the unmarshalled cell slice) plus the
// JSON parse itself. A report frame instead carries the sketch header and
// the raw little-endian cell block; the server reads the cells straight
// off the socket into a pooled []uint64 — on little-endian hosts the
// io.ReadFull target IS the cell slice's backing memory — and hands the
// borrowed slice to a ReportSink, which folds it into the round aggregate
// and returns. No intermediate []byte of the message ever exists, and
// steady-state ingestion allocates nothing per report.
//
// Framing: the 4-byte big-endian header word sets its top bit to mark a
// report frame (JSON payload lengths are capped at MaxFrame = 16 MiB, so
// the bit is never set by the JSON path); the low 31 bits are the payload
// length. The payload is a 56-byte preamble — user, round, d, w, n, seed
// as little-endian uint64, then the blinding-keystream suite byte, the
// frame-kind byte (report or adjustment share), the 16-bit campaign ID
// (zero = the legacy single campaign; formerly reserved bytes), and
// the negotiated config version as a little-endian
// uint32 — followed by the 8·d·w-byte cell block. The
// preamble length is itself protocol state: both endpoints must run the
// same revision (a mismatched peer fails the length check and is
// dropped), so like the cell layout it changes only in lockstep across
// a deployment. A header
// word with the top bit set and a zero payload length is a *flush
// marker*: it carries no report, but on a connection running batched
// acknowledgements (see batch.go) it occupies one sequence slot and
// forces the server to acknowledge everything consumed so far.

// reportFlag marks a header word as a streamed report frame (and, from
// server to client, a binary ack frame — the directions never mix).
const reportFlag = 1 << 31

// reportPreamble is the fixed payload prefix: user(8) round(8) d(8) w(8)
// n(8) seed(8) keystream(1) kind(1) campaign(2) configVersion(4).
const reportPreamble = 56

// maxWireCampaign is the largest campaign ID a frame can carry: the
// campaign rides in the preamble's two formerly reserved bytes, so the
// wire revision caps IDs at 16 bits (the registry's uint32 headroom is
// for future frame widenings).
const maxWireCampaign = 0xFFFF

// Frame kinds, carried in the preamble byte after the keystream suite
// (formerly the first reserved byte, so every pre-kind frame decodes as
// kind 0 — a report). Kind 1 is a second-round adjustment share riding
// the same batched streaming path as reports: same preamble, same cell
// block, same cumulative ack slots and durability barrier, so the
// adjustment round scales exactly like the report round. Routing by a
// preamble byte rather than by payload length matters because an
// adjustment payload is indistinguishable from a report's by size.
// Like every frame-format revision this deploys in lockstep
// (ARCHITECTURE.md §5): a pre-kind server reads an adjustment frame as
// a report — from a user whose report already folded in, so it fails
// the duplicate check and surfaces as an explicit error ack, never as
// silent corruption.
const (
	FrameKindReport byte = 0
	FrameKindAdjust byte = 1
)

// Report-frame geometry bounds, mirroring the sketch deserializer's: d·w
// is additionally capped by MaxFrame, so a hostile header cannot provoke
// a huge pool allocation.
const (
	maxReportDepth = 1 << 20
	maxReportWidth = 1 << 32
)

// Errors of the streaming path.
var (
	ErrBadReportFrame = errors.New("wire: malformed report frame")
	ErrNoSink         = errors.New("wire: server does not accept streamed reports")
)

// ReportFrame is one streamed report: the sketch header fields of the
// binary CMS serialization plus the flat cell vector, with the submitting
// user and round prepended.
//
// On the server side Cells is a pooled slice borrowed from the frame
// reader: it is valid only for the duration of the ReportSink call and
// must not be retained (fold it into the aggregate, or copy).
type ReportFrame struct {
	User  int
	Round uint64
	D, W  int
	N     uint64
	Seed  uint64
	// Keystream is the blinding-suite byte (blind.Keystream): it names
	// how the report's cells were blinded so the aggregator can reject a
	// report whose pairwise terms would not cancel against the round's.
	// Zero is the original HMAC-SHA256 suite, so reports blinded before
	// the suite existed still aggregate correctly. Note the byte rode in
	// on a preamble widening (48 → 56 bytes) — a wire-format revision
	// that, like every frame-header change, deploys in lockstep across
	// all endpoints (ARCHITECTURE.md §5); a 48-byte-preamble peer cannot
	// interoperate with this revision.
	Keystream byte
	// ConfigVersion is the negotiated round-config version the report
	// was built under (see handshake.go), riding in what used to be
	// reserved preamble bytes — so a pre-handshake peer's reports decode
	// as version 0, "unversioned", and keep aggregating. The aggregator
	// rejects a stale nonzero version (privacy.ErrIncompatibleConfig):
	// it means the reporter blinded against an outdated roster.
	ConfigVersion uint32
	// Kind distinguishes what the cell block is: FrameKindReport (zero —
	// a blinded CMS, the only kind that existed before the byte) or
	// FrameKindAdjust (a second-round adjustment share). For adjustment
	// frames D and W still carry the sketch geometry (the share is one
	// flat cell vector of the same shape) while N and Seed are zero.
	Kind byte
	// Campaign is the counting campaign the frame belongs to, riding as
	// a 16-bit value in the two formerly reserved preamble bytes. Zero
	// is the implicit legacy campaign, so single-campaign peers (which
	// write zeros there) interoperate byte-identically in both
	// directions. The writer refuses values above 0xFFFF.
	Campaign uint32
	Cells    []uint64
}

// AdjustFrame builds a streamed second-round adjustment share: the
// submitting reporter's summed pairwise terms toward the round's missing
// users, as one cell vector of the round's d×w geometry. It travels the
// same batched, pipelined, durability-barriered path as report frames.
func AdjustFrame(user int, round uint64, d, w int, ks byte, cv uint32, cells []uint64) *ReportFrame {
	return &ReportFrame{
		User: user, Round: round, D: d, W: w,
		Keystream: ks, ConfigVersion: cv,
		Kind: FrameKindAdjust, Cells: cells,
	}
}

// ReportSink consumes streamed report frames. Implementations must
// tolerate concurrent calls (one per connection) and must not retain
// f.Cells past the call.
type ReportSink interface {
	ConsumeReport(f *ReportFrame) error
}

// ReportDurability is optionally implemented by a ReportSink whose
// consumed reports must reach stable storage before they are
// acknowledged (the back-end's write-ahead log). The server calls
// SyncReports immediately before every report acknowledgement — the
// per-frame JSON ack on the legacy path, the binary ack on the batched
// path — so the acknowledgement is a durability barrier and the
// batched-ack window amortizes the sink's fsyncs exactly as it
// amortizes the ack writes. A SyncReports failure is reported to the
// client in place of the ack: the reports were consumed but cannot be
// promised durable.
type ReportDurability interface {
	SyncReports() error
}

// reportBuf is the per-frame scratch a connection borrows from the pool:
// the cell slice payloads decode into and, on big-endian hosts only, the
// byte buffer the socket is read into first. Pooling a struct pointer
// (rather than the slices themselves) keeps Put allocation-free, so
// steady-state ingestion recycles one object per frame with zero garbage.
type reportBuf struct {
	cells []uint64
	raw   []byte // big-endian fallback only; nil on little-endian hosts
}

var reportBufPool = sync.Pool{New: func() interface{} { return new(reportBuf) }}

// cellSlice returns b.cells resized to n, growing the backing array only
// when a larger geometry arrives than the pool has seen.
func (b *reportBuf) cellSlice(n int) []uint64 {
	if cap(b.cells) < n {
		b.cells = make([]uint64, n)
	}
	return b.cells[:cap(b.cells)][:n]
}

// WriteReportFrame writes one streamed report. The cell block goes out
// as the slice's raw byte view on little-endian hosts (no encode copy);
// elsewhere it is encoded through a scratch buffer.
func WriteReportFrame(w io.Writer, f *ReportFrame) error {
	cells := uint64(f.D) * uint64(f.W)
	if f.D < 1 || f.W < 1 || uint64(len(f.Cells)) != cells || f.Campaign > maxWireCampaign {
		return ErrBadReportFrame
	}
	payload := uint64(reportPreamble) + 8*cells
	if payload > MaxFrame {
		return ErrFrameTooLarge
	}
	var hdr [4 + reportPreamble]byte
	binary.BigEndian.PutUint32(hdr[0:], uint32(payload)|reportFlag)
	binary.LittleEndian.PutUint64(hdr[4:], uint64(f.User))
	binary.LittleEndian.PutUint64(hdr[12:], f.Round)
	binary.LittleEndian.PutUint64(hdr[20:], uint64(f.D))
	binary.LittleEndian.PutUint64(hdr[28:], uint64(f.W))
	binary.LittleEndian.PutUint64(hdr[36:], f.N)
	binary.LittleEndian.PutUint64(hdr[44:], f.Seed)
	hdr[52] = f.Keystream
	hdr[53] = f.Kind
	binary.LittleEndian.PutUint16(hdr[54:], uint16(f.Campaign))
	binary.LittleEndian.PutUint32(hdr[56:], f.ConfigVersion)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if view, ok := vec.AsBytes(f.Cells); ok {
		_, err := w.Write(view)
		return err
	}
	buf := make([]byte, 8*len(f.Cells))
	vec.PutLE(buf, f.Cells)
	_, err := w.Write(buf)
	return err
}

// readReportFrame reads a report payload of length n (header word already
// consumed, flag stripped) into buf's pooled cell slice. The returned
// frame's Cells alias buf; recycle buf only after the frame is consumed.
func readReportFrame(r io.Reader, n uint32, buf *reportBuf) (*ReportFrame, error) {
	if n < reportPreamble || n > MaxFrame {
		return nil, ErrBadReportFrame
	}
	var pre [reportPreamble]byte
	if _, err := io.ReadFull(r, pre[:]); err != nil {
		return nil, fmt.Errorf("wire: short report frame: %w", err)
	}
	user := binary.LittleEndian.Uint64(pre[0:])
	round := binary.LittleEndian.Uint64(pre[8:])
	d64 := binary.LittleEndian.Uint64(pre[16:])
	w64 := binary.LittleEndian.Uint64(pre[24:])
	nTotal := binary.LittleEndian.Uint64(pre[32:])
	seed := binary.LittleEndian.Uint64(pre[40:])
	ks := pre[48]
	kind := pre[49]
	campaign := binary.LittleEndian.Uint16(pre[50:])
	cv := binary.LittleEndian.Uint32(pre[52:])
	if user > 1<<31 || d64 < 1 || w64 < 1 || d64 > maxReportDepth || w64 > maxReportWidth {
		return nil, ErrBadReportFrame
	}
	if kind > FrameKindAdjust {
		return nil, ErrBadReportFrame
	}
	cells := d64 * w64 // ≤ 2⁵² by the bounds above: no overflow
	if uint64(n) != reportPreamble+8*cells {
		return nil, ErrBadReportFrame
	}
	dst := buf.cellSlice(int(cells))
	if view, ok := vec.AsBytes(dst); ok {
		// Zero-copy: the socket read lands in the cell slice's memory.
		if _, err := io.ReadFull(r, view); err != nil {
			return nil, fmt.Errorf("wire: short report frame: %w", err)
		}
	} else {
		if cap(buf.raw) < int(8*cells) {
			buf.raw = make([]byte, 8*cells)
		}
		raw := buf.raw[:8*cells]
		if _, err := io.ReadFull(r, raw); err != nil {
			return nil, fmt.Errorf("wire: short report frame: %w", err)
		}
		vec.GetLE(dst, raw)
	}
	return &ReportFrame{
		User: int(user), Round: round,
		D: int(d64), W: int(w64),
		N: nTotal, Seed: seed, Keystream: ks, ConfigVersion: cv, Kind: kind,
		Campaign: uint32(campaign), Cells: dst,
	}, nil
}

// SubmitReportFrame streams one report over the client connection and
// waits for the acknowledgement. It shares the connection's request
// serialization with Do. On a connection that has negotiated batched
// acknowledgements (OpenReportStream) the round trip is one binary ack
// instead of a JSON message; for sustained submission open a
// ReportStream instead, which keeps a window of frames in flight.
func (c *Client) SubmitReportFrame(f *ReportFrame) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return ErrClosed
	}
	if c.streaming {
		return ErrStreaming
	}
	if c.ackBatch > 0 {
		return c.submitFrameBatched(f)
	}
	if err := WriteReportFrame(c.conn, f); err != nil {
		return err
	}
	resp, err := ReadMsg(c.conn)
	if err != nil {
		return err
	}
	return respError(resp)
}
