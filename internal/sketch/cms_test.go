package sketch

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewDimensions(t *testing.T) {
	c, err := New(0.01, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	// d = ceil(ln 100) = 5, w = ceil(e/0.01) = 272.
	if c.Depth() != 5 {
		t.Fatalf("Depth = %d, want 5", c.Depth())
	}
	if c.Width() != 272 {
		t.Fatalf("Width = %d, want 272", c.Width())
	}
	if c.Cells() != 5*272 {
		t.Fatalf("Cells = %d", c.Cells())
	}
}

func TestNewRejectsBadParams(t *testing.T) {
	for _, p := range [][2]float64{{0, 0.1}, {0.1, 0}, {1, 0.1}, {0.1, 1}, {-1, 0.5}} {
		if _, err := New(p[0], p[1]); err != ErrBadParams {
			t.Errorf("New(%v, %v) err = %v, want ErrBadParams", p[0], p[1], err)
		}
	}
	if _, err := NewWithDimensions(0, 5); err == nil {
		t.Error("NewWithDimensions(0,5) should error")
	}
	if _, err := NewWithDimensions(5, 0); err == nil {
		t.Error("NewWithDimensions(5,0) should error")
	}
}

func TestPaperExactCMSSizes(t *testing.T) {
	// Section 7.1: "The size in bytes of the CMS totals to 185, 196, and
	// 207KB, for an input size of 10k, 50k, and 100k" with δ = ε = 0.001
	// and 4-byte cells. Reproduce the numbers exactly.
	for _, c := range []struct {
		T      int
		wantKB int
	}{
		{10000, 185}, {50000, 196}, {100000, 207},
	} {
		cms, err := NewForElements(c.T, 0.001, 0.001)
		if err != nil {
			t.Fatal(err)
		}
		// The paper reports decimal kilobytes (1 KB = 1000 B).
		gotKB := int(float64(cms.SizeBytes(4))/1000 + 0.5)
		if gotKB != c.wantKB {
			t.Errorf("T=%d: size = %d KB, paper reports %d KB (d=%d, w=%d)",
				c.T, gotKB, c.wantKB, cms.Depth(), cms.Width())
		}
	}
	if _, err := NewForElements(0, 0.01, 0.01); err == nil {
		t.Error("T=0 accepted")
	}
	if _, err := NewForElements(100, 0, 0.01); err != ErrBadParams {
		t.Error("bad epsilon accepted")
	}
}

func TestPaperCMSSizes(t *testing.T) {
	// Section 7.1: with δ = ε = 0.001 and 4-byte cells the paper reports a
	// sketch around 190-210 KB regardless of input size (the CMS footprint
	// depends only on ε and δ). Verify our geometry lands in that regime.
	c, err := New(0.001, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	kb := float64(c.SizeBytes(4)) / 1024
	if kb < 50 || kb > 250 {
		t.Fatalf("CMS size = %.0f KB, expected order of the paper's ~200 KB", kb)
	}
}

func TestQueryNeverUnderestimates(t *testing.T) {
	c, _ := New(0.01, 0.01)
	truth := map[string]uint64{}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 5000; i++ {
		key := fmt.Sprintf("ad-%d", rng.Intn(300))
		c.UpdateString(key)
		truth[key]++
	}
	for k, want := range truth {
		if got := c.QueryString(k); got < want {
			t.Fatalf("Query(%q) = %d < true %d", k, got, want)
		}
	}
}

func TestErrorBoundHolds(t *testing.T) {
	// With ε=0.001 over 10k updates the additive error bound is 10; check
	// that the overwhelming majority of estimates respect it (the bound
	// holds per-query with probability 1-δ).
	c, _ := New(0.001, 0.01)
	truth := map[string]uint64{}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		key := fmt.Sprintf("url-%d", rng.Intn(2000))
		c.UpdateString(key)
		truth[key]++
	}
	bound := uint64(c.ErrorBound()) + 1
	violations := 0
	for k, want := range truth {
		if got := c.QueryString(k); got > want+bound {
			violations++
		}
	}
	if frac := float64(violations) / float64(len(truth)); frac > 0.02 {
		t.Fatalf("error bound violated for %.1f%% of keys", 100*frac)
	}
}

func TestWeightedUpdate(t *testing.T) {
	c, _ := New(0.01, 0.01)
	c.UpdateWeighted([]byte("x"), 7)
	if got := c.Query([]byte("x")); got < 7 {
		t.Fatalf("Query = %d, want >= 7", got)
	}
	if c.N() != 7 {
		t.Fatalf("N = %d", c.N())
	}
}

func TestConservativeUpdateNotWorse(t *testing.T) {
	plain, _ := NewWithDimensions(4, 64)
	cons, _ := NewWithDimensions(4, 64)
	rng := rand.New(rand.NewSource(3))
	keys := make([]string, 0, 2000)
	for i := 0; i < 2000; i++ {
		k := fmt.Sprintf("k-%d", rng.Intn(400))
		keys = append(keys, k)
		plain.UpdateString(k)
		cons.ConservativeUpdate([]byte(k), 1)
	}
	for _, k := range keys {
		if cons.QueryString(k) > plain.QueryString(k) {
			t.Fatalf("conservative estimate exceeds plain for %q", k)
		}
	}
}

func TestMergeEqualsUnion(t *testing.T) {
	a, _ := NewWithDimensions(5, 128)
	b, _ := NewWithDimensions(5, 128)
	union, _ := NewWithDimensions(5, 128)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 3000; i++ {
		k := []byte(fmt.Sprintf("item-%d", rng.Intn(500)))
		if i%2 == 0 {
			a.Update(k)
		} else {
			b.Update(k)
		}
		union.Update(k)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.N() != union.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), union.N())
	}
	for i := 0; i < 500; i++ {
		k := []byte(fmt.Sprintf("item-%d", i))
		if a.Query(k) != union.Query(k) {
			t.Fatalf("merge mismatch for %s: %d vs %d", k, a.Query(k), union.Query(k))
		}
	}
}

func TestMergeDimensionMismatch(t *testing.T) {
	a, _ := NewWithDimensions(4, 64)
	b, _ := NewWithDimensions(4, 65)
	if err := a.Merge(b); err != ErrDimensionMismatch {
		t.Fatalf("err = %v", err)
	}
	c, _ := NewWithDimensions(5, 64)
	if err := a.Merge(c); err != ErrDimensionMismatch {
		t.Fatalf("err = %v", err)
	}
	if err := a.Merge(nil); err != ErrDimensionMismatch {
		t.Fatalf("err = %v", err)
	}
}

func TestCloneIndependent(t *testing.T) {
	a, _ := NewWithDimensions(3, 32)
	a.UpdateString("x")
	b := a.Clone()
	b.UpdateString("x")
	if a.QueryString("x") == b.QueryString("x") {
		t.Fatal("clone shares state with original")
	}
}

func TestReset(t *testing.T) {
	a, _ := NewWithDimensions(3, 32)
	a.UpdateString("x")
	a.Reset()
	if a.QueryString("x") != 0 || a.N() != 0 {
		t.Fatal("Reset did not clear state")
	}
	if a.Depth() != 3 || a.Width() != 32 {
		t.Fatal("Reset changed dimensions")
	}
}

func TestCellAccessors(t *testing.T) {
	a, _ := NewWithDimensions(2, 4)
	a.SetCell(1, 3, 42)
	if a.Cell(1, 3) != 42 {
		t.Fatal("SetCell/Cell mismatch")
	}
	a.AddToCell(1*4+3, ^uint64(0)) // add -1 mod 2^64
	if a.Cell(1, 3) != 41 {
		t.Fatalf("AddToCell wraparound: got %d", a.Cell(1, 3))
	}
	if len(a.FlatCells()) != 8 {
		t.Fatal("FlatCells length")
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	a, _ := New(0.01, 0.05)
	for i := 0; i < 100; i++ {
		a.UpdateString(fmt.Sprintf("ad-%d", i%17))
	}
	data, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var b CMS
	if err := b.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if b.Depth() != a.Depth() || b.Width() != a.Width() || b.N() != a.N() {
		t.Fatal("header mismatch after round trip")
	}
	for i := 0; i < 17; i++ {
		k := fmt.Sprintf("ad-%d", i)
		if a.QueryString(k) != b.QueryString(k) {
			t.Fatalf("query mismatch for %s", k)
		}
	}
}

func TestAppendBinaryMatchesMarshalAndReuses(t *testing.T) {
	a, _ := New(0.01, 0.05)
	for i := 0; i < 100; i++ {
		a.UpdateString(fmt.Sprintf("ad-%d", i%17))
	}
	want, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// Appends after a prefix, byte-identical to MarshalBinary.
	got, err := a.AppendBinary([]byte("prefix"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got[:6]) != "prefix" || !bytes.Equal(got[6:], want) {
		t.Fatal("AppendBinary encoding differs from MarshalBinary")
	}
	// A buffer with capacity is extended without reallocating.
	scratch := make([]byte, 0, len(want))
	out, err := a.AppendBinary(scratch)
	if err != nil {
		t.Fatal(err)
	}
	if &out[0] != &scratch[:1][0] {
		t.Fatal("AppendBinary reallocated despite sufficient capacity")
	}

	// UnmarshalBinary into a same-geometry receiver reuses its cells.
	var b CMS
	if err := b.UnmarshalBinary(want); err != nil {
		t.Fatal(err)
	}
	before := &b.FlatCells()[0]
	if err := b.UnmarshalBinary(want); err != nil {
		t.Fatal(err)
	}
	if &b.FlatCells()[0] != before {
		t.Fatal("UnmarshalBinary reallocated a reusable cell slice")
	}
	for i := 0; i < 17; i++ {
		k := fmt.Sprintf("ad-%d", i)
		if a.QueryString(k) != b.QueryString(k) {
			t.Fatalf("query mismatch for %s after reuse decode", k)
		}
	}
}

func TestUnmarshalRejectsCorrupt(t *testing.T) {
	var c CMS
	if err := c.UnmarshalBinary(nil); err != ErrCorrupt {
		t.Fatalf("nil err = %v", err)
	}
	a, _ := NewWithDimensions(2, 4)
	data, _ := a.MarshalBinary()
	if err := c.UnmarshalBinary(data[:len(data)-1]); err != ErrCorrupt {
		t.Fatalf("truncated err = %v", err)
	}
	bad := append([]byte(nil), data...)
	bad[0] = 0 // d = 0
	if err := c.UnmarshalBinary(bad); err != ErrCorrupt {
		t.Fatalf("zero-depth err = %v", err)
	}
}

func TestStringSummary(t *testing.T) {
	a, _ := NewWithDimensions(2, 4)
	if !strings.Contains(a.String(), "d=2") {
		t.Fatalf("String() = %q", a.String())
	}
}

// Property: Query is always >= true count, for arbitrary keys and orders.
func TestPropertyNoUnderestimate(t *testing.T) {
	f := func(keys []string) bool {
		c, _ := NewWithDimensions(4, 32)
		truth := map[string]uint64{}
		for _, k := range keys {
			c.UpdateString(k)
			truth[k]++
		}
		for k, want := range truth {
			if c.QueryString(k) < want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Merge is commutative — a.Merge(b) and b.Merge(a) answer queries
// identically.
func TestPropertyMergeCommutes(t *testing.T) {
	f := func(as, bs []string) bool {
		a1, _ := NewWithDimensions(3, 16)
		b1, _ := NewWithDimensions(3, 16)
		a2, _ := NewWithDimensions(3, 16)
		b2, _ := NewWithDimensions(3, 16)
		for _, k := range as {
			a1.UpdateString(k)
			a2.UpdateString(k)
		}
		for _, k := range bs {
			b1.UpdateString(k)
			b2.UpdateString(k)
		}
		if err := a1.Merge(b1); err != nil {
			return false
		}
		if err := b2.Merge(a2); err != nil {
			return false
		}
		for _, k := range append(append([]string{}, as...), bs...) {
			if a1.QueryString(k) != b2.QueryString(k) {
				return false
			}
		}
		return a1.N() == b2.N()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: serialization round-trips for arbitrary update sequences.
func TestPropertySerializationRoundTrip(t *testing.T) {
	f := func(keys []string) bool {
		a, _ := NewWithDimensions(3, 16)
		for _, k := range keys {
			a.UpdateString(k)
		}
		data, err := a.MarshalBinary()
		if err != nil {
			return false
		}
		var b CMS
		if err := b.UnmarshalBinary(data); err != nil {
			return false
		}
		for _, k := range keys {
			if a.QueryString(k) != b.QueryString(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: merging never decreases any query answer.
func TestPropertyMergeMonotone(t *testing.T) {
	f := func(as, bs []string) bool {
		a, _ := NewWithDimensions(3, 16)
		b, _ := NewWithDimensions(3, 16)
		for _, k := range as {
			a.UpdateString(k)
		}
		for _, k := range bs {
			b.UpdateString(k)
		}
		before := map[string]uint64{}
		for _, k := range as {
			before[k] = a.QueryString(k)
		}
		if err := a.Merge(b); err != nil {
			return false
		}
		for k, v := range before {
			if a.QueryString(k) < v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUpdate(b *testing.B) {
	c, _ := New(0.001, 0.001)
	key := []byte("https://ads.example.com/creative/123456")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Update(key)
	}
}

func BenchmarkQuery(b *testing.B) {
	c, _ := New(0.001, 0.001)
	key := []byte("https://ads.example.com/creative/123456")
	c.Update(key)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Query(key)
	}
}

func BenchmarkMerge(b *testing.B) {
	x, _ := New(0.001, 0.001)
	y, _ := New(0.001, 0.001)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.Merge(y)
	}
}
