package repl_test

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"eyewnder/internal/backend"
	"eyewnder/internal/repl"
	"eyewnder/internal/store"
	"eyewnder/internal/wire"
)

// The promotion end-to-end test runs a real replicated primary in a
// child process (this test binary re-executed with the env marker
// below), attaches a follower, SIGKILLs the primary mid-round — no
// flush, no goodbye — promotes the follower on its mirror, finishes
// the round against the promoted back-end over the wire, and requires
// the result to be byte-identical to an uninterrupted control run.

const (
	e2eDirEnv  = "EYEWNDER_REPL_SERVER_DIR"
	e2eAddrEnv = "EYEWNDER_REPL_ADDR_FILE"
	// e2eDiffEnv names a file the test writes the promoted-vs-control
	// round comparison to (the CI replication job uploads it as an
	// artifact). Unset: no file is written.
	e2eDiffEnv = "EYEWNDER_ROUND_DIFF_OUT"
)

// e2eUsers is the fixed roster size both the helper process and the
// test use; they must agree or the follower would — correctly — refuse
// the stream.
const e2eUsers = 8

// TestMain doubles as the replicated-primary binary: when the env
// marker is set, the process serves a durable back-end plus the
// replication protocol until it is killed.
func TestMain(m *testing.M) {
	if dir := os.Getenv(e2eDirEnv); dir != "" {
		runReplPrimary(dir, os.Getenv(e2eAddrEnv))
		return
	}
	os.Exit(m.Run())
}

// runReplPrimary is the child-process body: open the store, serve the
// client protocol and the replication protocol, publish both
// addresses, and block until killed.
func runReplPrimary(dir, addrFile string) {
	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "repl primary: %v\n", err)
		os.Exit(1)
	}
	st, err := store.Open(dir, store.Options{RetainSegments: 2})
	if err != nil {
		fail(err)
	}
	cfg := backendCfg(testParams(), e2eUsers)
	cfg.Store = st
	b, err := backend.New(cfg)
	if err != nil {
		fail(err)
	}
	srv, err := b.Serve("127.0.0.1:0")
	if err != nil {
		fail(err)
	}
	rp, err := repl.ServePrimary("127.0.0.1:0", st)
	if err != nil {
		fail(err)
	}
	// Publish both addresses atomically so the parent never reads a
	// half-written file.
	tmp := addrFile + ".tmp"
	if err := os.WriteFile(tmp, []byte(srv.Addr()+"\n"+rp.Addr()+"\n"), 0o644); err != nil {
		fail(err)
	}
	if err := os.Rename(tmp, addrFile); err != nil {
		fail(err)
	}
	select {} // SIGKILL is the only way out
}

// startReplPrimary spawns the helper process on dir and returns the
// running command plus its client and replication addresses.
func startReplPrimary(t *testing.T, dir string) (cmd *exec.Cmd, addr, replAddr string) {
	t.Helper()
	addrFile := filepath.Join(t.TempDir(), "addr")
	cmd = exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), e2eDirEnv+"="+dir, e2eAddrEnv+"="+addrFile)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting repl primary: %v", err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if raw, err := os.ReadFile(addrFile); err == nil {
			lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
			if len(lines) == 2 {
				return cmd, lines[0], lines[1]
			}
		}
		if cmd.ProcessState != nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("repl primary never published its addresses")
	return nil, "", ""
}

// promoteDiff is the artifact the CI replication job uploads: the
// promoted follower's results next to the uninterrupted control's.
type promoteDiff struct {
	Identical        bool     `json:"identical"`
	DistinctAdsLive  int      `json:"distinct_ads_control"`
	DistinctAdsProm  int      `json:"distinct_ads_promoted"`
	UsersThLive      float64  `json:"users_th_control"`
	UsersThProm      float64  `json:"users_th_promoted"`
	CountMismatches  []string `json:"count_mismatches,omitempty"`
	ReportedPreKill  int      `json:"reported_before_kill"`
	ReportedPromoted int      `json:"reported_after_promotion"`
}

// TestPromoteAfterPrimaryKill is the replication acceptance test:
// SIGKILL the primary after half the roster has reported with a
// follower attached, promote the follower, finish the round against
// the promoted back-end, and require counts byte-identical to an
// uninterrupted run.
func TestPromoteAfterPrimaryKill(t *testing.T) {
	params := testParams()
	reports := buildReports(t, params, e2eUsers, 1)

	// Uninterrupted control, in-process.
	control, err := backend.New(backendCfg(params, e2eUsers))
	if err != nil {
		t.Fatal(err)
	}
	defer control.Close()
	for _, r := range reports {
		if err := control.ConsumeReport(frameOf(r)); err != nil {
			t.Fatal(err)
		}
	}
	controlTh, controlAds, err := control.CloseRound(1)
	if err != nil {
		t.Fatal(err)
	}
	controlCounts, err := control.UserCountsOfRound(1)
	if err != nil {
		t.Fatal(err)
	}

	dataDir := filepath.Join(t.TempDir(), "primary")
	cmd, addr, replAddr := startReplPrimary(t, dataDir)

	// The hot standby attaches before any traffic.
	mirror := filepath.Join(t.TempDir(), "mirror")
	f, err := repl.StartFollower(repl.Options{
		Dir: mirror, Addr: replAddr,
		Poll: 2 * time.Millisecond, Logf: t.Logf,
	}, backendCfg(params, e2eUsers))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Stop()

	// Phase 1: register a key and stream five of eight reports over a
	// batched connection; every acked frame is fsynced on the primary,
	// so the kill below cannot lose them — and the follower can fetch
	// them.
	cli, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := cli.Do(wire.TypeRegister,
		wire.RegisterReq{User: 3, PublicKey: []byte("pk3")}, nil); err != nil {
		t.Fatal(err)
	}
	rs, err := cli.OpenReportStream(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reports[:5] {
		if err := rs.Submit(frameOf(r)); err != nil {
			t.Fatal(err)
		}
	}
	if err := rs.Close(); err != nil { // flushes: all five acked = durable
		t.Fatal(err)
	}
	var status wire.RoundStatusResp
	if err := cli.Do(wire.TypeRoundStatus, wire.CloseRoundReq{Round: 1}, &status); err != nil {
		t.Fatal(err)
	}
	if status.Reported != 5 {
		t.Fatalf("pre-kill reported = %d, want 5", status.Reported)
	}
	reportedPreKill := status.Reported
	cli.Close()

	// The follower's warm replica catches up on every acked record.
	waitFor(t, "follower to mirror the acked reports", func() bool {
		rp, err := f.Replica().RoundProgressOf(1)
		return err == nil && rp.Reported == 5
	})

	// The crash: SIGKILL, mid-round, follower attached.
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	// Promotion: the mirror goes through the ordinary recovery path and
	// comes back writable.
	b2, disk, err := f.Promote()
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		b2.Close()
		disk.Close()
	}()
	srv2, err := b2.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	cli2, err := wire.Dial(srv2.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli2.Close()

	// The reported-bitmap survived the handoff…
	if err := cli2.Do(wire.TypeRoundStatus, wire.CloseRoundReq{Round: 1}, &status); err != nil {
		t.Fatal(err)
	}
	if status.Reported != 5 || !reflect.DeepEqual(status.Missing, []int{5, 6, 7}) {
		t.Fatalf("promoted status = %+v", status)
	}
	// …the bulletin board too…
	var roster wire.RosterResp
	if err := cli2.Do(wire.TypeRoster, struct{}{}, &roster); err != nil {
		t.Fatal(err)
	}
	if string(roster.PublicKeys[3]) != "pk3" {
		t.Fatal("registration lost across the promotion")
	}
	// …and a duplicate of a pre-kill report still bounces.
	if err := cli2.SubmitReportFrame(frameOf(reports[0])); err == nil ||
		!strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate across promotion = %v", err)
	}

	// Finish the round against the promoted back-end, over the wire.
	rs2, err := cli2.OpenReportStream(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reports[5:] {
		if err := rs2.Submit(frameOf(r)); err != nil {
			t.Fatal(err)
		}
	}
	if err := rs2.Close(); err != nil {
		t.Fatal(err)
	}
	var closed wire.CloseRoundResp
	if err := cli2.Do(wire.TypeCloseRound, wire.CloseRoundReq{Round: 1}, &closed); err != nil {
		t.Fatal(err)
	}

	// Compare against the uninterrupted control: distinct-ad count,
	// every per-ad user count (integers — byte-identical or bust), and
	// Users_th (float; close-time sample order is map-dependent, so
	// equal within rounding).
	diff := promoteDiff{
		DistinctAdsLive:  controlAds,
		DistinctAdsProm:  closed.DistinctAds,
		UsersThLive:      controlTh,
		UsersThProm:      closed.UsersTh,
		ReportedPreKill:  reportedPreKill,
		ReportedPromoted: status.Reported,
	}
	for id, want := range controlCounts {
		var audit wire.AuditAdResp
		if err := cli2.Do(wire.TypeAuditAd, wire.AuditAdReq{Round: 1, AdID: id}, &audit); err != nil {
			t.Fatal(err)
		}
		if audit.Users != want {
			diff.CountMismatches = append(diff.CountMismatches,
				fmt.Sprintf("ad %d: control %d, promoted %d", id, want, audit.Users))
		}
	}
	thDelta := closed.UsersTh - controlTh
	diff.Identical = closed.DistinctAds == controlAds && len(diff.CountMismatches) == 0 &&
		thDelta < 1e-9 && thDelta > -1e-9
	if out := os.Getenv(e2eDiffEnv); out != "" {
		raw, _ := json.MarshalIndent(diff, "", "  ")
		if err := os.WriteFile(out, append(raw, '\n'), 0o644); err != nil {
			t.Errorf("writing round diff artifact: %v", err)
		}
	}
	if !diff.Identical {
		t.Fatalf("promoted round differs from uninterrupted control: %+v", diff)
	}
}
