package client_test

import (
	"crypto/rand"
	"crypto/rsa"
	"fmt"
	"sync"
	"testing"
	"time"

	"eyewnder/internal/adsim"
	"eyewnder/internal/backend"
	"eyewnder/internal/client"
	"eyewnder/internal/crawler"
	"eyewnder/internal/detector"
	"eyewnder/internal/group"
	"eyewnder/internal/oprf"
	"eyewnder/internal/privacy"
	"eyewnder/internal/taxonomy"
	"eyewnder/internal/wire"
)

var (
	keyOnce sync.Once
	rsaKey  *rsa.PrivateKey
)

func testRSAKey() *rsa.PrivateKey {
	keyOnce.Do(func() {
		k, err := rsa.GenerateKey(rand.Reader, 1024)
		if err != nil {
			panic(err)
		}
		rsaKey = k
	})
	return rsaKey
}

func testParams() privacy.Params {
	return privacy.Params{Epsilon: 0.01, Delta: 0.01, IDSpace: 2000, Suite: group.P256()}
}

// TestFullSystemOverTCP runs the complete Figure 1 deployment over real
// TCP sockets: 3 extensions observe ads on rendered HTML pages, report
// blinded sketches through the wire protocol, the back-end closes the
// round, and a real-time audit classifies a chasing ad as targeted and a
// broad ad as non-targeted.
func TestFullSystemOverTCP(t *testing.T) {
	params := testParams()
	const nUsers = 3

	// Servers.
	osrv, err := oprf.NewServerFromKey(testRSAKey())
	if err != nil {
		t.Fatal(err)
	}
	oprfWire, err := backend.ServeOPRF("127.0.0.1:0", osrv)
	if err != nil {
		t.Fatal(err)
	}
	defer oprfWire.Close()

	be, err := backend.New(backend.Config{
		Params: params, Users: nUsers, UsersEstimator: detector.EstimatorMean,
	})
	if err != nil {
		t.Fatal(err)
	}
	beWire, err := be.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer beWire.Close()

	// Extensions.
	exts := make([]*client.Extension, nUsers)
	for i := 0; i < nUsers; i++ {
		beConn, err := wire.Dial(beWire.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer beConn.Close()
		oConn, err := wire.Dial(oprfWire.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer oConn.Close()
		pub, err := client.FetchOPRFPublicKey(oConn)
		if err != nil {
			t.Fatal(err)
		}
		cfg := detector.DefaultConfig()
		ext, err := client.New(client.Options{
			User: i, Detector: cfg, Params: params,
		}, &client.WireBackend{C: beConn}, &client.WireEvaluator{C: oConn}, pub)
		if err != nil {
			t.Fatal(err)
		}
		if err := ext.Register(); err != nil {
			t.Fatal(err)
		}
		exts[i] = ext
	}
	for _, ext := range exts {
		if err := ext.Join(); err != nil {
			t.Fatal(err)
		}
	}

	// Browsing: a targeted campaign chases user 0 across 6 sites; a broad
	// static campaign appears everywhere for everyone.
	chasing := &adsim.Campaign{ID: 500, Kind: adsim.KindTargeted, Category: taxonomy.Fishing, ProductSite: -1}
	broad := &adsim.Campaign{ID: 501, Kind: adsim.KindStatic, Category: taxonomy.News, ProductSite: -1}
	t0 := adsim.SimStart
	var chasingKey, broadKey string
	for site := 0; site < 6; site++ {
		s := &adsim.Site{ID: site, Domain: fmt.Sprintf("www.site-%d.example", site), Topic: taxonomy.News}
		// User 0 sees both ads; users 1 and 2 see only the broad one.
		pageWithBoth := adsim.RenderPage(s, []*adsim.Campaign{chasing, broad}, int64(site))
		pageBroad := adsim.RenderPage(s, []*adsim.Campaign{broad}, int64(site))
		ads, err := exts[0].VisitPage(s.Domain, pageWithBoth, t0.Add(time.Duration(site)*time.Hour))
		if err != nil {
			t.Fatal(err)
		}
		if len(ads) != 2 {
			t.Fatalf("site %d: detected %d ads, want 2", site, len(ads))
		}
		for _, ad := range ads {
			if ad.LandingURL == chasing.LandingURL() {
				chasingKey = ad.Key()
			}
			if ad.LandingURL == broad.LandingURL() {
				broadKey = ad.Key()
			}
		}
		for _, ext := range exts[1:] {
			if _, err := ext.VisitPage(s.Domain, pageBroad, t0.Add(time.Duration(site)*time.Hour)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if chasingKey == "" || broadKey == "" {
		t.Fatal("landing keys not recovered from rendered pages")
	}

	// Weekly report + round close.
	const round = 1
	for _, ext := range exts {
		if err := ext.SubmitReport(round); err != nil {
			t.Fatal(err)
		}
	}
	ctl, err := wire.Dial(beWire.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()
	var closeResp wire.CloseRoundResp
	if err := ctl.Do(wire.TypeCloseRound, wire.CloseRoundReq{Round: round}, &closeResp); err != nil {
		t.Fatal(err)
	}
	if closeResp.DistinctAds < 2 {
		t.Fatalf("distinct ads = %d", closeResp.DistinctAds)
	}

	// Real-time audits.
	now := t0.Add(24 * time.Hour)
	v, err := exts[0].AuditAd(chasingKey, round, now)
	if err != nil {
		t.Fatal(err)
	}
	if v.Class != detector.Targeted {
		t.Fatalf("chasing ad verdict = %+v, want targeted", v)
	}
	v, err = exts[0].AuditAd(broadKey, round, now)
	if err != nil {
		t.Fatal(err)
	}
	if v.Class != detector.Unknown && v.Class != detector.NonTargeted {
		t.Fatalf("broad ad verdict = %+v", v)
	}
	if v.Class != detector.NonTargeted {
		t.Fatalf("broad ad verdict = %v, want non-targeted", v.Class)
	}
}

// TestAdjustmentFlowOverTCP exercises the two-round fault tolerance over
// the wire: one extension never reports; the others adjust; the round
// closes with exact counts.
func TestAdjustmentFlowOverTCP(t *testing.T) {
	params := testParams()
	const nUsers = 3
	osrv, err := oprf.NewServerFromKey(testRSAKey())
	if err != nil {
		t.Fatal(err)
	}
	be, err := backend.New(backend.Config{Params: params, Users: nUsers, UsersEstimator: detector.EstimatorMean})
	if err != nil {
		t.Fatal(err)
	}
	beWire, err := be.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer beWire.Close()

	exts := make([]*client.Extension, nUsers)
	for i := 0; i < nUsers; i++ {
		beConn, err := wire.Dial(beWire.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer beConn.Close()
		ext, err := client.New(client.Options{
			User: i, Detector: detector.DefaultConfig(), Params: params,
		}, &client.WireBackend{C: beConn}, osrv, osrv.PublicKey())
		if err != nil {
			t.Fatal(err)
		}
		if err := ext.Register(); err != nil {
			t.Fatal(err)
		}
		exts[i] = ext
	}
	for _, ext := range exts {
		if err := ext.Join(); err != nil {
			t.Fatal(err)
		}
	}
	const round = 2
	t0 := adsim.SimStart
	for _, ext := range exts {
		if err := ext.ObserveAdDirect("https://ads.example/shared", "www.a.example", t0); err != nil {
			t.Fatal(err)
		}
	}
	// Only users 0 and 1 report.
	for _, ext := range exts[:2] {
		if err := ext.SubmitReport(round); err != nil {
			t.Fatal(err)
		}
	}
	for _, ext := range exts[:2] {
		missing, err := ext.SubmitAdjustmentIfNeeded(round)
		if err != nil {
			t.Fatal(err)
		}
		if len(missing) != 1 || missing[0] != 2 {
			t.Fatalf("missing = %v", missing)
		}
	}
	th, ads, err := be.CloseRound(round)
	if err != nil {
		t.Fatal(err)
	}
	if ads < 1 {
		t.Fatalf("ads = %d", ads)
	}
	// One ad seen by exactly the two reporters.
	if th < 1.5 || th > 2.5 {
		t.Fatalf("Users_th = %v, want ~2", th)
	}
}

// TestCrawlerIntegration runs the crawler against simulator-rendered
// clean-profile pages, over the wire protocol.
func TestCrawlerIntegration(t *testing.T) {
	cfg := adsim.DefaultConfig()
	cfg.Users = 20
	cfg.Sites = 40
	cfg.Campaigns = 30
	cfg.AvgVisitsPerWeek = 20
	cfg.StaticSitesMin, cfg.StaticSitesMax = 3, 10
	sim, err := adsim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fetch := crawler.FetcherFunc(func(site int) (string, error) {
		ids := sim.CrawlerVisit(site, 3)
		camps := make([]*adsim.Campaign, len(ids))
		for i, id := range ids {
			camps[i] = sim.Campaign(id)
		}
		return adsim.RenderPage(sim.Sites()[site], camps, int64(site)), nil
	})
	cr := crawler.New(fetch, nil)
	srv, err := cr.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ctl, err := wire.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()
	totalKeys := 0
	for site := 0; site < cfg.Sites; site++ {
		var resp wire.CrawlVisitResp
		if err := ctl.Do(wire.TypeCrawlVisit, wire.CrawlVisitReq{Site: site}, &resp); err != nil {
			t.Fatal(err)
		}
		totalKeys += len(resp.AdKeys)
	}
	if cr.Visits() != cfg.Sites {
		t.Fatalf("visits = %d", cr.Visits())
	}
	if totalKeys == 0 {
		t.Fatal("crawler found no ads")
	}
	// Every ad the crawler saw must be non-targeted ground truth.
	ds := cr.Dataset()
	if len(ds) == 0 {
		t.Fatal("empty CR dataset")
	}
	for key := range ds {
		if !cr.Seen(key) {
			t.Fatalf("Seen(%q) = false for dataset member", key)
		}
		found := false
		for _, c := range sim.Campaigns() {
			if c.LandingURL() == key {
				found = true
				if c.Kind.IsTargeted() {
					t.Fatalf("crawler saw targeted campaign %d", c.ID)
				}
			}
		}
		if !found {
			t.Fatalf("crawler key %q matches no campaign", key)
		}
	}
}
