// Package group provides the cyclic-group key agreement used by the
// blinding protocol of Section 6 ("Blinding factors"). Each eyeWnder user
// holds a Diffie–Hellman key pair (x_i, y_i = g^x_i); any two users derive
// the same pairwise secret from which additive random shares of zero are
// expanded.
//
// Two suites are provided, both stdlib-only:
//
//   - P256: NIST P-256 ECDH via crypto/ecdh (the default; small keys,
//     fast, constant-time).
//   - MODP2048: the classic finite-field group of the paper's exposition
//     (g generates a prime-order subgroup mod a 2048-bit safe prime,
//     RFC 3526 group 14), where Computational Diffie–Hellman is assumed
//     hard.
//
// The MODP suite exists so the "blinding group" ablation bench can compare
// the two; the protocol is agnostic to the suite.
package group

import (
	"crypto/ecdh"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"math/big"
)

// Errors returned by the package.
var (
	ErrBadPublicKey = errors.New("group: malformed peer public key")
	ErrUnknownSuite = errors.New("group: unknown suite")
)

// Suite is a cyclic group supporting Diffie–Hellman key agreement.
type Suite interface {
	// Name identifies the suite ("P256" or "MODP2048").
	Name() string
	// GenerateKey draws a fresh key pair from rand.
	GenerateKey(rand io.Reader) (PrivateKey, error)
	// PublicKeySize is the encoded public key length in bytes.
	PublicKeySize() int
}

// PrivateKey is one party's secret key x with its public share y = g^x.
type PrivateKey interface {
	// PublicKey returns the encoded public share to publish on the
	// bulletin board.
	PublicKey() []byte
	// SharedSecret derives the 32-byte pairwise secret with the peer
	// holding the given encoded public key. SharedSecret is symmetric:
	// a.SharedSecret(b.PublicKey()) == b.SharedSecret(a.PublicKey()).
	SharedSecret(peerPublic []byte) ([]byte, error)
}

// BySuiteName returns the suite with the given Name.
func BySuiteName(name string) (Suite, error) {
	switch name {
	case "P256":
		return P256(), nil
	case "MODP2048":
		return MODP2048(), nil
	}
	return nil, fmt.Errorf("%w: %q", ErrUnknownSuite, name)
}

// --- P-256 ECDH suite ---

type p256Suite struct{}

// P256 returns the NIST P-256 ECDH suite.
func P256() Suite { return p256Suite{} }

func (p256Suite) Name() string { return "P256" }

func (p256Suite) PublicKeySize() int { return 65 } // uncompressed point

func (p256Suite) GenerateKey(rand io.Reader) (PrivateKey, error) {
	k, err := ecdh.P256().GenerateKey(rand)
	if err != nil {
		return nil, err
	}
	return &p256Key{k: k}, nil
}

type p256Key struct{ k *ecdh.PrivateKey }

func (p *p256Key) PublicKey() []byte { return p.k.PublicKey().Bytes() }

func (p *p256Key) SharedSecret(peerPublic []byte) ([]byte, error) {
	pub, err := ecdh.P256().NewPublicKey(peerPublic)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadPublicKey, err)
	}
	secret, err := p.k.ECDH(pub)
	if err != nil {
		return nil, err
	}
	// Hash the raw x-coordinate into a uniform 32-byte key.
	sum := sha256.Sum256(secret)
	return sum[:], nil
}

// --- RFC 3526 2048-bit MODP suite ---

// modp2048P is the 2048-bit safe prime of RFC 3526 group 14.
const modp2048PHex = "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD1" +
	"29024E088A67CC74020BBEA63B139B22514A08798E3404DD" +
	"EF9519B3CD3A431B302B0A6DF25F14374FE1356D6D51C245" +
	"E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED" +
	"EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3D" +
	"C2007CB8A163BF0598DA48361C55D39A69163FA8FD24CF5F" +
	"83655D23DCA3AD961C62F356208552BB9ED529077096966D" +
	"670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B" +
	"E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9" +
	"DE2BCBF6955817183995497CEA956AE515D2261898FA0510" +
	"15728E5A8AACAA68FFFFFFFFFFFFFFFF"

type modpSuite struct {
	p, q, g *big.Int
}

var modp2048 *modpSuite

func init() {
	p, ok := new(big.Int).SetString(modp2048PHex, 16)
	if !ok {
		panic("group: bad MODP constant")
	}
	q := new(big.Int).Rsh(new(big.Int).Sub(p, big.NewInt(1)), 1) // (p-1)/2
	modp2048 = &modpSuite{p: p, q: q, g: big.NewInt(2)}
}

// MODP2048 returns the RFC 3526 group-14 finite-field suite.
func MODP2048() Suite { return modp2048 }

func (s *modpSuite) Name() string { return "MODP2048" }

func (s *modpSuite) PublicKeySize() int { return 256 }

func (s *modpSuite) GenerateKey(rand io.Reader) (PrivateKey, error) {
	// x uniform in [2, q).
	max := new(big.Int).Sub(s.q, big.NewInt(2))
	x, err := randInt(rand, max)
	if err != nil {
		return nil, err
	}
	x.Add(x, big.NewInt(2))
	y := new(big.Int).Exp(s.g, x, s.p)
	return &modpKey{suite: s, x: x, y: y}, nil
}

type modpKey struct {
	suite *modpSuite
	x, y  *big.Int
}

func (k *modpKey) PublicKey() []byte {
	out := make([]byte, k.suite.PublicKeySize())
	k.y.FillBytes(out)
	return out
}

func (k *modpKey) SharedSecret(peerPublic []byte) ([]byte, error) {
	if len(peerPublic) != k.suite.PublicKeySize() {
		return nil, ErrBadPublicKey
	}
	y := new(big.Int).SetBytes(peerPublic)
	// Reject identity / out-of-range elements.
	if y.Cmp(big.NewInt(2)) < 0 || y.Cmp(new(big.Int).Sub(k.suite.p, big.NewInt(1))) >= 0 {
		return nil, ErrBadPublicKey
	}
	shared := new(big.Int).Exp(y, k.x, k.suite.p)
	buf := make([]byte, k.suite.PublicKeySize())
	shared.FillBytes(buf)
	sum := sha256.Sum256(buf)
	return sum[:], nil
}

// randInt returns a uniform integer in [0, max) using rejection sampling.
func randInt(rand io.Reader, max *big.Int) (*big.Int, error) {
	if max.Sign() <= 0 {
		return nil, errors.New("group: non-positive bound")
	}
	bitLen := max.BitLen()
	byteLen := (bitLen + 7) / 8
	buf := make([]byte, byteLen)
	for {
		if _, err := io.ReadFull(rand, buf); err != nil {
			return nil, err
		}
		// Mask excess top bits to cut the rejection rate.
		if excess := 8*byteLen - bitLen; excess > 0 {
			buf[0] &= 0xff >> excess
		}
		v := new(big.Int).SetBytes(buf)
		if v.Cmp(max) < 0 {
			return v, nil
		}
	}
}
