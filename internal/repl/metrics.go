package repl

import (
	"time"

	"eyewnder/internal/obs"
)

// replMetrics holds the follower's pre-registered instrument handles.
// Counters mirror the Status fields exactly — both are written at the
// same sites — so the /metrics view and the replication status line
// can never disagree.
type replMetrics struct {
	events   *obs.Counter
	resyncs  *obs.Counter
	fetchLat *obs.Histogram
}

// newReplMetrics registers the follower instruments in reg (or a
// private registry when reg is nil, so the handles are always real).
func newReplMetrics(reg *obs.Registry) *replMetrics {
	reg = obs.Ensure(reg)
	return &replMetrics{
		events: reg.Counter("eyewnder_repl_events_total",
			"WAL events applied to the warm replica since the follower started."),
		resyncs: reg.Counter("eyewnder_repl_resyncs_total",
			"Snapshot resyncs (startup's initial sync is the first)."),
		fetchLat: reg.Histogram("eyewnder_repl_fetch_seconds",
			"Latency of one chunk fetch exchange with the primary.", nil),
	}
}

// registerFollowerGauges exposes the follower's live replication state
// as gauges derived from Status() — the same snapshot /statusz and the
// periodic status log line render.
func registerFollowerGauges(reg *obs.Registry, f *Follower) {
	reg.GaugeFunc("eyewnder_repl_connected",
		"1 when the last exchange with the primary succeeded.",
		func() float64 { return b2f(f.Status().Connected) })
	reg.GaugeFunc("eyewnder_repl_caught_up",
		"1 when the last poll fetched and applied every manifest byte.",
		func() float64 { return b2f(f.Status().CaughtUp) })
	reg.GaugeFunc("eyewnder_repl_tail_generation",
		"WAL segment generation the follower is tailing.",
		func() float64 { return float64(f.Status().TailGen) })
	reg.GaugeFunc("eyewnder_repl_tail_bytes",
		"Bytes of the tail segment fetched locally.",
		func() float64 { return float64(f.Status().TailOff) })
	reg.GaugeFunc("eyewnder_repl_lag_generations",
		"WAL segment generations the follower trails the primary by.",
		func() float64 {
			s := f.Status()
			if s.RemoteGen > s.TailGen {
				return float64(s.RemoteGen - s.TailGen)
			}
			return 0
		})
	reg.GaugeFunc("eyewnder_repl_lag_bytes",
		"Bytes the follower trails the primary's newest WAL segment by (a lower bound while whole segments are still outstanding).",
		func() float64 {
			s := f.Status()
			switch {
			case s.RemoteGen > s.TailGen:
				return float64(s.RemoteOff)
			case s.RemoteGen == s.TailGen && s.RemoteOff > s.TailOff:
				return float64(s.RemoteOff - s.TailOff)
			}
			return 0
		})
}

// b2f renders a bool as a 0/1 gauge value.
func b2f(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

// observeSince records the elapsed time since start in h.
func observeSince(h *obs.Histogram, start time.Time) {
	h.Observe(time.Since(start))
}
