// Package cpu detects, once at init, the SIMD capabilities the vec
// kernel dispatch needs: AVX2 on amd64 (via CPUID, including the
// OS-support XGETBV check) and NEON/ASIMD on arm64 (architecturally
// guaranteed, so no probe is needed).
//
// The package reports raw hardware capability only. Policy — the
// `purego` build tag, the EYEWNDER_NOSIMD environment override — lives
// in package vec, which combines capability and policy when it picks
// kernels. Under the `purego` tag this package carries no assembly and
// every capability reads false, so a purego build cannot reach a SIMD
// path even by accident.
package cpu

// HasAVX2 reports whether the CPU and OS support AVX2 (256-bit integer
// SIMD): always false off amd64 and under the purego tag.
var HasAVX2 bool

// HasNEON reports whether NEON/ASIMD vector instructions are available:
// true on every arm64 (the base A64 ISA includes ASIMD), false
// elsewhere and under the purego tag.
var HasNEON bool
