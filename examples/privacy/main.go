// Privacy walkthrough: the three cryptographic moves of Section 6, shown
// step by step — (1) the oblivious PRF that turns ad URLs into opaque
// IDs, (2) the blinded count-min sketches whose individual cells look
// uniformly random, (3) the aggregation that cancels all blindings and
// reveals only the global #Users counters, including the two-round
// recovery when a client goes missing.
package main

import (
	"crypto/rand"
	"fmt"
	"log"

	"eyewnder/internal/blind"
	"eyewnder/internal/group"
	"eyewnder/internal/oprf"
	"eyewnder/internal/privacy"
)

func main() {
	params := privacy.Params{Epsilon: 0.05, Delta: 0.05, IDSpace: 1000, Suite: group.P256()}
	// A versioned round config normally arrives from the server's Welcome
	// handshake; this single-process walkthrough pins an unversioned one.
	rcfg := privacy.UnversionedConfig(params, 5)

	// (1) Oblivious PRF: the client learns F(k, url); the server never
	// sees the URL, the client never sees k.
	osrv, err := oprf.NewServer(1024)
	if err != nil {
		log.Fatal(err)
	}
	cli := oprf.NewClient(osrv.PublicKey(), nil)
	url := "https://ads.example/creative/42"
	req, err := cli.Blind([]byte(url))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("blinded request (server sees only this): %x...\n", req.Blinded.Bytes()[:8])
	resp, err := osrv.Evaluate(req.Blinded)
	if err != nil {
		log.Fatal(err)
	}
	out, err := cli.Finalize(req, resp)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ad URL %q → ad ID %d (verified against the server's public key)\n\n",
		url, params.AdID(out))

	// (2) Blinded sketches: 5 users, each reporting one shared ad plus a
	// private one.
	roster, err := blind.NewRoster(params.Suite, 5, rand.Reader)
	if err != nil {
		log.Fatal(err)
	}
	clients := make([]*privacy.Client, 5)
	agg, err := privacy.NewAggregator(rcfg, 1)
	if err != nil {
		log.Fatal(err)
	}
	var sharedID uint64
	for i, p := range roster.Parties {
		clients[i] = privacy.NewClient(rcfg, p, osrv.PublicKey(), osrv)
		sharedID, err = clients[i].ObserveAd("https://ads.example/shared")
		if err != nil {
			log.Fatal(err)
		}
		if _, err := clients[i].ObserveAd(fmt.Sprintf("https://ads.example/private-%d", i)); err != nil {
			log.Fatal(err)
		}
	}
	for i, c := range clients {
		rep, err := c.Report(1)
		if err != nil {
			log.Fatal(err)
		}
		cells := rep.Sketch.FlatCells()
		fmt.Printf("user %d blinded report, first cells: %016x %016x ... (uniform noise)\n",
			i, cells[0], cells[1])
		if err := agg.Add(rep); err != nil {
			log.Fatal(err)
		}
	}

	// (3) Aggregation: blindings cancel; only the multiset union remains.
	final, err := agg.Finalize()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\naggregate: #Users(shared ad) = %d (true: 5)\n", privacy.QueryUsers(final, sharedID))

	// Fault tolerance: re-run with user 3 missing; reporters adjust.
	fmt.Println("\n--- round 2, user 3 never reports ---")
	agg2, err := privacy.NewAggregator(rcfg, 2)
	if err != nil {
		log.Fatal(err)
	}
	for i, c := range clients {
		if i == 3 {
			continue
		}
		if _, err := c.ObserveAd("https://ads.example/shared"); err != nil {
			log.Fatal(err)
		}
		rep, err := c.Report(2)
		if err != nil {
			log.Fatal(err)
		}
		if err := agg2.Add(rep); err != nil {
			log.Fatal(err)
		}
	}
	missing := agg2.Missing()
	fmt.Printf("back-end publishes missing list: %v\n", missing)
	cms, _ := params.NewSketch()
	var adjs [][]uint64
	for i, c := range clients {
		if i == 3 {
			continue
		}
		adj, err := c.Adjust(2, cms.Cells(), missing)
		if err != nil {
			log.Fatal(err)
		}
		adjs = append(adjs, adj)
	}
	if err := agg2.ApplyAdjustments(adjs...); err != nil {
		log.Fatal(err)
	}
	final2, err := agg2.Finalize()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after 2-round recovery: #Users(shared ad) = %d (true among reporters: 4)\n",
		privacy.QueryUsers(final2, sharedID))
}
