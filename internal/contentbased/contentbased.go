// Package contentbased implements the topic-based detection baseline the
// paper evaluates against (Section 7.3.2, footnote 8): the methodology of
// Carrascosa et al. [16] adapted to real users.
//
// For each user, the profile is the set of content categories that appear
// at least T times across DISTINCT websites the user visited (the paper
// uses T = 20, favouring precision over recall). An ad is classified
// targeted iff the main category of its landing page matches a profile
// category.
//
// The same machinery provides the "semantic overlap" test of the Figure 4
// evaluation tree: whether the ad's category overlaps the user profile
// under the taxonomy's relatedness relation.
//
// Content-based detection can only see DIRECT interest targeting: an
// indirect campaign (no semantic overlap between audience and offering)
// is invisible to it by construction — which is the gap eyeWnder closes.
package contentbased

import (
	"strings"

	"eyewnder/internal/taxonomy"
)

// Profile accumulates one user's browsing categories.
type Profile struct {
	// sites[topic] = set of distinct domains of that topic the user
	// visited.
	sites map[taxonomy.Topic]map[string]bool
}

// NewProfile returns an empty profile.
func NewProfile() *Profile {
	return &Profile{sites: make(map[taxonomy.Topic]map[string]bool)}
}

// VisitSite records a visit to a domain categorized under topic.
func (p *Profile) VisitSite(domain string, topic taxonomy.Topic) {
	m := p.sites[topic]
	if m == nil {
		m = make(map[string]bool)
		p.sites[topic] = m
	}
	m[domain] = true
}

// SiteCount returns how many distinct domains of the topic the user
// visited.
func (p *Profile) SiteCount(topic taxonomy.Topic) int { return len(p.sites[topic]) }

// Categories returns the profile: topics backed by at least T distinct
// websites.
func (p *Profile) Categories(T int) []taxonomy.Topic {
	var out []taxonomy.Topic
	for topic, domains := range p.sites {
		if len(domains) >= T {
			out = append(out, topic)
		}
	}
	return out
}

// Classifier is the content-based baseline.
type Classifier struct {
	// T is the significance threshold on distinct-site counts (paper: 20).
	T int
}

// New returns a classifier with the given threshold; t <= 0 selects the
// paper's T = 20.
func New(t int) *Classifier {
	if t <= 0 {
		t = 20
	}
	return &Classifier{T: t}
}

// IsTargeted classifies an ad: targeted iff the landing-page category
// matches a significant profile category exactly.
func (c *Classifier) IsTargeted(p *Profile, adCategory taxonomy.Topic) bool {
	for _, cat := range p.Categories(c.T) {
		if cat == adCategory {
			return true
		}
	}
	return false
}

// HasSemanticOverlap reports whether the ad category is semantically
// related to any significant profile category — the evaluation tree's
// overlap test (methodology of [45], here backed by the taxonomy).
func (c *Classifier) HasSemanticOverlap(p *Profile, adCategory taxonomy.Topic) bool {
	return taxonomy.OverlapAny(p.Categories(c.T), adCategory)
}

// LandingCategory extracts the main category from a landing-page URL. Our
// simulated shops embed the category as the first path segment
// (https://shopN.example/<category>/offer-M), standing in for the AdWords
// lookup the paper uses. ok is false when no taxonomy category is found.
func LandingCategory(landingURL string) (taxonomy.Topic, bool) {
	s := landingURL
	if i := strings.Index(s, "://"); i >= 0 {
		s = s[i+3:]
	}
	parts := strings.Split(s, "/")
	for _, part := range parts[1:] { // parts[0] is the host
		if t, ok := taxonomy.ByName(part); ok {
			return t, true
		}
	}
	return 0, false
}
