package adsim

import (
	"math"
	"math/rand"
	"sort"
	"time"

	"eyewnder/internal/taxonomy"
)

// Simulator drives one simulated deployment.
type Simulator struct {
	cfg       Config
	rng       *rand.Rand
	users     []*User
	sites     []*Site
	campaigns []*Campaign

	// sitePopCum is the cumulative Zipf popularity for site sampling.
	sitePopCum []float64
	// sitesByTopic indexes site IDs per topic for interest-driven visits.
	sitesByTopic map[taxonomy.Topic][]int
	// contextualByTopic indexes contextual campaign IDs per category.
	contextualByTopic map[taxonomy.Topic][]int
	// targetedByTopic indexes targeted/indirect campaign IDs per target
	// topic.
	targetedByTopic map[taxonomy.Topic][]int
	// retargeted lists retargeting campaign IDs by product site.
	retargetedBySite map[int][]int

	// capCount[user][campaign] = impressions this week (frequency cap).
	capCount []map[int]int
	// retargetActive[user] = set of retargeting campaigns chasing the user.
	retargetActive []map[int]bool
}

// New builds a simulator (users, sites, campaigns, indexes) from cfg.
func New(cfg Config) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Simulator{
		cfg:               cfg,
		rng:               rand.New(rand.NewSource(cfg.Seed)),
		sitesByTopic:      make(map[taxonomy.Topic][]int),
		contextualByTopic: make(map[taxonomy.Topic][]int),
		targetedByTopic:   make(map[taxonomy.Topic][]int),
		retargetedBySite:  make(map[int][]int),
	}
	s.buildSites()
	s.buildUsers()
	s.buildCampaigns()
	s.fillInventories()
	s.capCount = make([]map[int]int, cfg.Users)
	s.retargetActive = make([]map[int]bool, cfg.Users)
	for i := range s.capCount {
		s.capCount[i] = make(map[int]int)
		s.retargetActive[i] = make(map[int]bool)
	}
	return s, nil
}

func (s *Simulator) buildSites() {
	n := s.cfg.Sites
	s.sites = make([]*Site, n)
	s.sitePopCum = make([]float64, n)
	var cum float64
	for i := 0; i < n; i++ {
		topic := taxonomy.Topic(s.rng.Intn(taxonomy.Count))
		// Zipf popularity over rank i+1.
		w := 1 / math.Pow(float64(i+1), s.cfg.ZipfS)
		cum += w
		s.sites[i] = &Site{
			ID:        i,
			Domain:    siteDomain(i, topic),
			Topic:     topic,
			popWeight: w,
		}
		s.sitePopCum[i] = cum
		s.sitesByTopic[topic] = append(s.sitesByTopic[topic], i)
	}
}

func siteDomain(i int, topic taxonomy.Topic) string {
	return "www." + topic.String() + "-" + itoa(i) + ".example"
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [20]byte
	pos := len(buf)
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[pos:])
}

func (s *Simulator) buildUsers() {
	s.users = make([]*User, s.cfg.Users)
	for i := range s.users {
		nInt := s.cfg.MinInterests
		if s.cfg.MaxInterests > s.cfg.MinInterests {
			nInt += s.rng.Intn(s.cfg.MaxInterests - s.cfg.MinInterests + 1)
		}
		perm := s.rng.Perm(taxonomy.Count)
		interests := make([]taxonomy.Topic, nInt)
		for j := 0; j < nInt; j++ {
			interests[j] = taxonomy.Topic(perm[j])
		}
		demo := s.drawDemographics()
		u := &User{ID: i, Interests: interests, Demo: demo}
		if s.cfg.DemographicBias {
			// Targeted-slot share is logistic in the planted log-odds,
			// anchored at the configured base share for the base levels.
			base := math.Log(s.cfg.BaseTargetedShare / (1 - s.cfg.BaseTargetedShare))
			u.targetedShare = sigmoid(base + demo.plantedLogOdds())
		} else {
			u.targetedShare = s.cfg.BaseTargetedShare
		}
		s.users[i] = u
	}
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

func (s *Simulator) drawDemographics() Demographics {
	var d Demographics
	switch r := s.rng.Float64(); {
	case r < 0.40:
		d.Gender = GenderFemale
	case r < 0.85:
		d.Gender = GenderMale
	default:
		d.Gender = GenderUndisclosed
	}
	switch r := s.rng.Float64(); {
	case r < 0.35:
		d.Income = Income0to30
	case r < 0.70:
		d.Income = Income30to60
	case r < 0.90:
		d.Income = Income60to90
	default:
		d.Income = Income90plus
	}
	switch r := s.rng.Float64(); {
	case r < 0.10:
		d.Age = Age1to20
	case r < 0.40:
		d.Age = Age20to30
	case r < 0.65:
		d.Age = Age30to40
	case r < 0.82:
		d.Age = Age40to50
	case r < 0.93:
		d.Age = Age50to60
	default:
		d.Age = Age60to70
	}
	d.Employed = s.rng.Float64() < 0.7
	return d
}

func (s *Simulator) buildCampaigns() {
	total := s.cfg.Campaigns
	nTargeted := int(math.Round(float64(total) * s.cfg.TargetedFraction))
	s.campaigns = make([]*Campaign, 0, total)
	// Targeted family: direct / indirect / retargeted split.
	nRetarget := int(math.Round(float64(nTargeted) * s.cfg.RetargetedShare))
	nIndirect := int(math.Round(float64(nTargeted) * s.cfg.IndirectShare))
	nDirect := nTargeted - nRetarget - nIndirect
	id := 0
	for i := 0; i < nDirect; i++ {
		topic := taxonomy.Topic(s.rng.Intn(taxonomy.Count))
		c := &Campaign{
			ID:           id,
			Kind:         KindTargeted,
			Category:     topic, // direct: ad category == targeted interest
			TargetTopics: []taxonomy.Topic{topic},
			ProductSite:  -1,
			FrequencyCap: s.cfg.FrequencyCap,
		}
		s.campaigns = append(s.campaigns, c)
		s.targetedByTopic[topic] = append(s.targetedByTopic[topic], id)
		id++
	}
	for i := 0; i < nIndirect; i++ {
		topic := taxonomy.Topic(s.rng.Intn(taxonomy.Count))
		c := &Campaign{
			ID:           id,
			Kind:         KindIndirect,
			Category:     taxonomy.NonOverlapping(topic),
			TargetTopics: []taxonomy.Topic{topic},
			ProductSite:  -1,
			FrequencyCap: s.cfg.FrequencyCap,
		}
		s.campaigns = append(s.campaigns, c)
		s.targetedByTopic[topic] = append(s.targetedByTopic[topic], id)
		id++
	}
	for i := 0; i < nRetarget; i++ {
		site := s.rng.Intn(s.cfg.Sites)
		c := &Campaign{
			ID:           id,
			Kind:         KindRetargeted,
			Category:     s.sites[site].Topic,
			ProductSite:  site,
			FrequencyCap: s.cfg.FrequencyCap,
		}
		s.campaigns = append(s.campaigns, c)
		s.retargetedBySite[site] = append(s.retargetedBySite[site], id)
		id++
	}
	// Non-targeted family: static and contextual, 50/50.
	nNon := total - nTargeted
	nStatic := nNon / 2
	for i := 0; i < nStatic; i++ {
		// Campaign reach is heavy-tailed, like real ad popularity: most
		// static deals cover a handful of sites, a few "brand awareness"
		// campaigns blanket a large slice of the web. Truncated Pareto
		// between the configured bounds.
		span := s.paretoSpan(s.cfg.StaticSitesMin, s.cfg.StaticSitesMax)
		if span > s.cfg.Sites {
			span = s.cfg.Sites
		}
		perm := s.rng.Perm(s.cfg.Sites)[:span]
		c := &Campaign{
			ID:           id,
			Kind:         KindStatic,
			Category:     taxonomy.Topic(s.rng.Intn(taxonomy.Count)),
			CarrierSites: perm,
			ProductSite:  -1,
		}
		s.campaigns = append(s.campaigns, c)
		id++
	}
	for i := 0; i < nNon-nStatic; i++ {
		topic := taxonomy.Topic(s.rng.Intn(taxonomy.Count))
		c := &Campaign{
			ID:          id,
			Kind:        KindContextual,
			Category:    topic,
			ProductSite: -1,
		}
		s.campaigns = append(s.campaigns, c)
		s.contextualByTopic[topic] = append(s.contextualByTopic[topic], id)
		id++
	}
}

// paretoSpan draws a truncated Pareto(α=1.16) integer in [min, max]:
// mostly near min, occasionally spanning toward max.
func (s *Simulator) paretoSpan(min, max int) int {
	if max <= min {
		return min
	}
	const alpha = 1.16
	u := s.rng.Float64()
	v := float64(min) / math.Pow(1-u, 1/alpha)
	if v > float64(max) {
		return max
	}
	return int(v)
}

// fillInventories assigns each site its static pins plus a random sample
// of its topic's contextual pool, capped at AdsPerSite. Sampling (rather
// than sharing one fixed topic list) matters: on the real web a specific
// contextual creative runs on a few sites of its topic, not on all of
// them, which keeps the per-ad audience distribution heavy-tailed.
func (s *Simulator) fillInventories() {
	for _, c := range s.campaigns {
		if c.Kind != KindStatic {
			continue
		}
		for _, siteID := range c.CarrierSites {
			s.sites[siteID].Inventory = append(s.sites[siteID].Inventory, c.ID)
		}
	}
	var contextualAll []int
	for _, c := range s.campaigns {
		if c.Kind == KindContextual {
			contextualAll = append(contextualAll, c.ID)
		}
	}
	for _, site := range s.sites {
		pool := s.contextualByTopic[site.Topic]
		for _, idx := range s.rng.Perm(len(pool)) {
			if len(site.Inventory) >= s.cfg.AdsPerSite {
				break
			}
			site.Inventory = append(site.Inventory, pool[idx])
		}
		// Backfill with random contextual ads so thin-topic sites still
		// have inventory ("run of network" filler).
		for len(site.Inventory) < s.cfg.AdsPerSite/2 && len(contextualAll) > 0 {
			site.Inventory = append(site.Inventory,
				contextualAll[s.rng.Intn(len(contextualAll))])
		}
	}
}

// Users exposes the generated population.
func (s *Simulator) Users() []*User { return s.users }

// Sites exposes the generated web.
func (s *Simulator) Sites() []*Site { return s.sites }

// Campaigns exposes the generated campaigns.
func (s *Simulator) Campaigns() []*Campaign { return s.campaigns }

// Campaign returns the campaign with the given ID.
func (s *Simulator) Campaign(id int) *Campaign { return s.campaigns[id] }

// pickSite draws the next site for a user: an interest-matched site with
// probability InterestAffinity, otherwise a Zipf popularity draw.
func (s *Simulator) pickSite(u *User) int {
	if s.rng.Float64() < s.cfg.InterestAffinity && len(u.Interests) > 0 {
		topic := u.Interests[s.rng.Intn(len(u.Interests))]
		if ids := s.sitesByTopic[topic]; len(ids) > 0 {
			return ids[s.rng.Intn(len(ids))]
		}
	}
	// Binary search the cumulative Zipf mass.
	total := s.sitePopCum[len(s.sitePopCum)-1]
	r := s.rng.Float64() * total
	lo, hi := 0, len(s.sitePopCum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if s.sitePopCum[mid] < r {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// eligibleTargeted lists targeted campaigns that may chase user u right
// now: retargeting campaigns activated for u, plus interest-matched
// direct/indirect campaigns — all under their weekly frequency cap.
func (s *Simulator) eligibleTargeted(u *User) []int {
	var out []int
	// Sorted iteration keeps runs deterministic for a fixed seed.
	retarget := make([]int, 0, len(s.retargetActive[u.ID]))
	for cid := range s.retargetActive[u.ID] {
		retarget = append(retarget, cid)
	}
	sort.Ints(retarget)
	for _, cid := range retarget {
		if s.capCount[u.ID][cid] < s.campaigns[cid].FrequencyCap {
			out = append(out, cid)
		}
	}
	for _, topic := range u.Interests {
		for _, cid := range s.targetedByTopic[topic] {
			if s.capCount[u.ID][cid] < s.campaigns[cid].FrequencyCap {
				out = append(out, cid)
			}
		}
	}
	return out
}

// serveVisit fills the visit's ad slots and returns the shown campaigns.
func (s *Simulator) serveVisit(u *User, site *Site) []int {
	// Visiting a product site arms its retargeting campaigns for u.
	for _, cid := range s.retargetedBySite[site.ID] {
		s.retargetActive[u.ID][cid] = true
	}
	shown := make([]int, 0, s.cfg.SlotsPerVisit)
	for slot := 0; slot < s.cfg.SlotsPerVisit; slot++ {
		if s.rng.Float64() < u.targetedShare {
			if elig := s.eligibleTargeted(u); len(elig) > 0 {
				cid := elig[s.rng.Intn(len(elig))]
				s.capCount[u.ID][cid]++
				shown = append(shown, cid)
				continue
			}
		}
		if len(site.Inventory) > 0 {
			shown = append(shown, site.Inventory[s.rng.Intn(len(site.Inventory))])
		}
	}
	return shown
}

// Run simulates cfg.Weeks weeks and returns the full impression stream
// with ground truth.
func (s *Simulator) Run() *Result {
	res := &Result{
		Config:    s.cfg,
		Users:     s.users,
		Sites:     s.sites,
		Campaigns: s.campaigns,
	}
	for week := 0; week < s.cfg.Weeks; week++ {
		// Weekly frequency caps reset; retargeting interest decays.
		for i := range s.capCount {
			s.capCount[i] = make(map[int]int)
			if week > 0 {
				// Campaign "fade-out": ~half of armed retargeting drops.
				// Sorted iteration keeps the rng stream deterministic.
				armed := make([]int, 0, len(s.retargetActive[i]))
				for cid := range s.retargetActive[i] {
					armed = append(armed, cid)
				}
				sort.Ints(armed)
				for _, cid := range armed {
					if s.rng.Float64() < 0.5 {
						delete(s.retargetActive[i], cid)
					}
				}
			}
		}
		for day := 0; day < 7; day++ {
			rate := s.dailyRate(day)
			for _, u := range s.users {
				visits := s.poisson(rate)
				for v := 0; v < visits; v++ {
					site := s.sites[s.pickSite(u)]
					res.Visits++
					res.VisitLog = append(res.VisitLog, Visit{
						User: u.ID, Site: site.ID, Week: week, Day: day,
					})
					ts := SimStart.
						Add(time.Duration(week) * 7 * 24 * time.Hour).
						Add(time.Duration(day) * 24 * time.Hour).
						Add(time.Duration(s.rng.Intn(24*3600)) * time.Second)
					for _, cid := range s.serveVisit(u, site) {
						res.Impressions = append(res.Impressions, Impression{
							User: u.ID, Site: site.ID, Campaign: cid,
							Week: week, Day: day, Time: ts,
						})
					}
				}
			}
		}
	}
	return res
}

// dailyRate splits the weekly visit budget over days, discounting the
// weekend (days 5 and 6 — SimStart is a Monday) by WeekendFactor.
func (s *Simulator) dailyRate(day int) float64 {
	wf := s.cfg.WeekendFactor
	unit := s.cfg.AvgVisitsPerWeek / (5 + 2*wf)
	if day >= 5 {
		return unit * wf
	}
	return unit
}

// poisson draws a Poisson variate by Knuth's method (rates here are small
// enough that the multiplicative algorithm is fine).
func (s *Simulator) poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= s.rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 10000 {
			return k // guard against pathological rates
		}
	}
}

// CrawlerVisit returns the campaigns a clean-profile visitor (no history,
// no cookies) sees on the site: static pins and contextual matches only,
// because no targeting data exists for the crawler. This is the CR
// dataset generator (Section 7.3.1).
func (s *Simulator) CrawlerVisit(siteID int, slots int) []int {
	site := s.sites[siteID]
	if len(site.Inventory) == 0 {
		return nil
	}
	out := make([]int, 0, slots)
	for i := 0; i < slots; i++ {
		out = append(out, site.Inventory[s.rng.Intn(len(site.Inventory))])
	}
	return out
}
