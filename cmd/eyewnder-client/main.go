// Command eyewnder-client is a simulated browser-extension user: it
// connects to a running eyewnder-server pair, registers its blinding key,
// browses simulator-rendered pages for a week, uploads its blinded
// report, and audits the ads it saw once the round is closed.
//
// Run one process per user, then close the round with -close once every
// user has reported:
//
//	eyewnder-client -user 0 -total 3 &
//	eyewnder-client -user 1 -total 3 &
//	eyewnder-client -user 2 -total 3 -close
package main

import (
	"flag"
	"log"
	"time"

	"eyewnder/internal/adsim"
	"eyewnder/internal/blind"
	"eyewnder/internal/client"
	"eyewnder/internal/detector"
	"eyewnder/internal/group"
	"eyewnder/internal/privacy"
	"eyewnder/internal/wire"
)

func main() {
	var (
		backendAddr = flag.String("backend", "127.0.0.1:7001", "back-end address")
		oprfAddr    = flag.String("oprf", "127.0.0.1:7002", "oprf-server address")
		user        = flag.Int("user", 0, "this user's roster index")
		total       = flag.Int("total", 3, "total roster size (must match the server)")
		visits      = flag.Int("visits", 40, "page visits to simulate")
		round       = flag.Uint64("round", 1, "reporting round")
		closeRound  = flag.Bool("close", false, "close the round after reporting and audit")
		seed        = flag.Int64("seed", 1, "browsing seed")
		epsilon     = flag.Float64("epsilon", 0.01, "CMS epsilon (must match the server)")
		delta       = flag.Float64("delta", 0.01, "CMS delta (must match the server)")
		idSpace     = flag.Uint64("id-space", 100000, "ad-ID space (must match the server)")
		keystream   = flag.String("keystream", "hmac-sha256", "blinding keystream suite: hmac-sha256 or aes-ctr (must match the server and every other client)")
	)
	flag.Parse()

	ks, err := blind.KeystreamByName(*keystream)
	if err != nil {
		log.Fatalf("keystream: %v", err)
	}

	beConn, err := wire.Dial(*backendAddr)
	if err != nil {
		log.Fatalf("dial back-end: %v", err)
	}
	defer beConn.Close()
	opConn, err := wire.Dial(*oprfAddr)
	if err != nil {
		log.Fatalf("dial oprf-server: %v", err)
	}
	defer opConn.Close()
	pub, err := client.FetchOPRFPublicKey(opConn)
	if err != nil {
		log.Fatalf("fetch oprf key: %v", err)
	}

	params := privacy.Params{Epsilon: *epsilon, Delta: *delta, IDSpace: *idSpace, Suite: group.P256(), Keystream: ks}
	ext, err := client.New(client.Options{
		User: *user, Detector: detector.DefaultConfig(), Params: params,
	}, &client.WireBackend{C: beConn}, &client.WireEvaluator{C: opConn}, pub)
	if err != nil {
		log.Fatal(err)
	}
	if err := ext.Register(); err != nil {
		log.Fatalf("register: %v", err)
	}
	log.Printf("user %d registered; waiting for full roster of %d", *user, *total)
	for {
		if err := ext.Join(); err == nil {
			break
		}
		time.Sleep(300 * time.Millisecond)
	}
	log.Printf("user %d joined the roster", *user)

	// Browse simulator-generated pages.
	cfg := adsim.DefaultConfig()
	cfg.Users = *total
	cfg.Sites = 200
	cfg.Campaigns = 400
	cfg.Seed = *seed
	sim, err := adsim.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res := sim.Run()
	t0 := adsim.SimStart
	seen := map[string]bool{}
	n := 0
	for _, imp := range res.Impressions {
		if imp.User != *user || n >= *visits {
			continue
		}
		n++
		site := sim.Sites()[imp.Site]
		camp := sim.Campaign(imp.Campaign)
		page := adsim.RenderPage(site, []*adsim.Campaign{camp}, int64(n))
		ads, err := ext.VisitPage(site.Domain, page, imp.Time)
		if err != nil {
			log.Fatalf("visit: %v", err)
		}
		for _, ad := range ads {
			seen[ad.Key()] = true
		}
	}
	log.Printf("user %d browsed %d pages, observed %d distinct ads", *user, n, len(seen))

	if err := ext.SubmitReport(*round); err != nil {
		log.Fatalf("report: %v", err)
	}
	log.Printf("user %d submitted blinded report for round %d", *user, *round)

	if !*closeRound {
		return
	}
	// Wait until everyone reported, then close and audit.
	for {
		reported, _, _, err := (&client.WireBackend{C: beConn}).RoundStatus(*round)
		if err != nil {
			log.Fatal(err)
		}
		if reported >= *total {
			break
		}
		time.Sleep(300 * time.Millisecond)
	}
	var resp wire.CloseRoundResp
	if err := beConn.Do(wire.TypeCloseRound, wire.CloseRoundReq{Round: *round}, &resp); err != nil {
		log.Fatalf("close round: %v", err)
	}
	log.Printf("round %d closed: Users_th=%.2f over %d distinct ads", *round, resp.UsersTh, resp.DistinctAds)
	now := t0.Add(6 * 24 * time.Hour)
	for key := range seen {
		v, err := ext.AuditAd(key, *round, now)
		if err != nil {
			log.Fatalf("audit: %v", err)
		}
		log.Printf("audit %-60s → %-12s (#domains=%d th=%.2f  #users=%d th=%.2f)",
			key, v.Class, v.DomainCount, v.DomainsThreshold, v.UserCount, v.UsersThreshold)
	}
}
