package backend

import (
	"crypto/rand"
	"crypto/rsa"
	"sync"
	"testing"

	"eyewnder/internal/blind"
	"eyewnder/internal/detector"
	"eyewnder/internal/group"
	"eyewnder/internal/oprf"
	"eyewnder/internal/privacy"
)

var (
	fixOnce sync.Once
	fixSrv  *oprf.Server
	fixRos  *blind.Roster
)

func fixtures(t testing.TB) (*oprf.Server, *blind.Roster) {
	fixOnce.Do(func() {
		key, err := rsa.GenerateKey(rand.Reader, 1024)
		if err != nil {
			panic(err)
		}
		fixSrv, err = oprf.NewServerFromKey(key)
		if err != nil {
			panic(err)
		}
		fixRos, err = blind.NewRoster(group.P256(), 4, rand.Reader)
		if err != nil {
			panic(err)
		}
	})
	return fixSrv, fixRos
}

func testParams() privacy.Params {
	return privacy.Params{Epsilon: 0.01, Delta: 0.01, IDSpace: 2000, Suite: group.P256()}
}

func newBackend(t *testing.T) (*Backend, []*privacy.Client) {
	t.Helper()
	srv, ros := fixtures(t)
	params := testParams()
	b, err := New(Config{Params: params, Users: len(ros.Parties), UsersEstimator: detector.EstimatorMean})
	if err != nil {
		t.Fatal(err)
	}
	clients := make([]*privacy.Client, len(ros.Parties))
	for i, p := range ros.Parties {
		clients[i] = privacy.NewClient(privacy.UnversionedConfig(params, 0), p, srv.PublicKey(), srv)
	}
	return b, clients
}

func TestRegisterAndRoster(t *testing.T) {
	b, _ := newBackend(t)
	n, err := b.Register(0, []byte{1, 2, 3})
	if err != nil || n != 4 {
		t.Fatalf("Register = %d, %v", n, err)
	}
	if _, err := b.Register(-1, nil); err != ErrBadUser {
		t.Fatalf("bad user err = %v", err)
	}
	if _, err := b.Register(4, nil); err != ErrBadUser {
		t.Fatalf("bad user err = %v", err)
	}
	roster, cv, rv := b.Roster()
	if len(roster) != 4 || roster[0] == nil || roster[1] != nil {
		t.Fatalf("roster = %v", roster)
	}
	if cv < 2 || rv < 2 {
		t.Fatalf("registration did not bump versions: config v%d roster v%d", cv, rv)
	}
	// Roster copies are isolated.
	roster[0][0] = 99
	if again, _, _ := b.Roster(); again[0][0] == 99 {
		t.Fatal("roster aliases internal state")
	}
	// An identical re-registration is an idempotent retry: no bump.
	if _, err := b.Register(0, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if _, cv2, rv2 := b.Roster(); cv2 != cv || rv2 != rv {
		t.Fatalf("idempotent re-register bumped versions: %d->%d / %d->%d", cv, cv2, rv, rv2)
	}
	// A changed key is a roster change: both versions bump.
	if _, err := b.Register(0, []byte{9, 9, 9}); err != nil {
		t.Fatal(err)
	}
	if _, cv3, rv3 := b.Roster(); cv3 != cv+1 || rv3 != rv+1 {
		t.Fatalf("key change did not bump versions: config v%d roster v%d", cv3, rv3)
	}
}

func TestFullRoundLifecycle(t *testing.T) {
	b, clients := newBackend(t)
	const round = 1
	for i, c := range clients {
		if _, err := c.ObserveAd("https://ads.example/common"); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			if _, err := c.ObserveAd("https://ads.example/rare"); err != nil {
				t.Fatal(err)
			}
		}
		rep, err := c.Report(round)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.SubmitReport(rep); err != nil {
			t.Fatal(err)
		}
	}
	reported, missing, closed, err := b.RoundStatus(round)
	if err != nil {
		t.Fatal(err)
	}
	if reported != 4 || len(missing) != 0 || closed {
		t.Fatalf("status = %d/%v/%v", reported, missing, closed)
	}
	th, ads, err := b.CloseRound(round)
	if err != nil {
		t.Fatal(err)
	}
	if ads < 2 {
		t.Fatalf("distinct ads = %d, want >= 2", ads)
	}
	if th <= 1 || th >= 4 {
		t.Fatalf("Users_th = %v, want between 1 and 4 (counts are {4,1})", th)
	}
	// Closing twice is idempotent.
	th2, _, err := b.CloseRound(round)
	if err != nil || th2 != th {
		t.Fatalf("re-close = %v, %v", th2, err)
	}
	gotTh, err := b.Threshold(round)
	if err != nil || gotTh != th {
		t.Fatalf("Threshold = %v, %v", gotTh, err)
	}
	counts, err := b.UserCountsOfRound(round)
	if err != nil || len(counts) < 2 {
		t.Fatalf("UserCounts = %v, %v", counts, err)
	}
	// Submitting after close fails.
	rep, err := clients[0].Report(round)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.SubmitReport(rep); err != ErrRoundClosed {
		t.Fatalf("post-close submit err = %v", err)
	}
}

func TestRoundWithMissingUsersNeedsAdjustments(t *testing.T) {
	b, clients := newBackend(t)
	const round = 7
	// Users 0..2 report; user 3 is missing.
	for _, c := range clients[:3] {
		if _, err := c.ObserveAd("https://ads.example/x"); err != nil {
			t.Fatal(err)
		}
		rep, err := c.Report(round)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.SubmitReport(rep); err != nil {
			t.Fatal(err)
		}
	}
	// Without adjustments the close fails cleanly.
	if _, _, err := b.CloseRound(round); err == nil {
		t.Fatal("close with missing reports and no adjustments succeeded")
	}
	_, missing, _, err := b.RoundStatus(round)
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != 1 || missing[0] != 3 {
		t.Fatalf("missing = %v", missing)
	}
	cms, _ := testParams().NewSketch()
	for i, c := range clients[:3] {
		adj, err := c.Adjust(round, cms.Cells(), missing)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.SubmitAdjustment(i, round, adj); err != nil {
			t.Fatal(err)
		}
	}
	th, ads, err := b.CloseRound(round)
	if err != nil {
		t.Fatal(err)
	}
	if ads < 1 {
		t.Fatalf("distinct ads = %d", ads)
	}
	if th < 2.5 || th > 3.5 {
		t.Fatalf("Users_th = %v, want ~3 (one ad seen by 3 reporters)", th)
	}
}

func TestThresholdBeforeClose(t *testing.T) {
	b, clients := newBackend(t)
	if _, err := b.Threshold(9); err != ErrUnknownRound {
		t.Fatalf("unknown round err = %v", err)
	}
	rep, err := clients[0].Report(9)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.SubmitReport(rep); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Threshold(9); err != ErrRoundNotClosed {
		t.Fatalf("open round err = %v", err)
	}
	if _, err := b.AuditAd(9, 1); err != ErrRoundNotClosed {
		t.Fatalf("audit open round err = %v", err)
	}
	if _, err := b.AuditAd(10, 1); err != ErrUnknownRound {
		t.Fatalf("audit unknown round err = %v", err)
	}
	if _, err := b.UserCountsOfRound(10); err != ErrUnknownRound {
		t.Fatalf("counts unknown round err = %v", err)
	}
}

func TestSubmitAdjustmentValidation(t *testing.T) {
	b, _ := newBackend(t)
	if err := b.SubmitAdjustment(99, 1, nil); err != ErrBadUser {
		t.Fatalf("err = %v", err)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Users: 0}); err == nil {
		t.Fatal("zero users accepted")
	}
}
