package main

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"time"

	"eyewnder/internal/backend"
	"eyewnder/internal/blind"
	"eyewnder/internal/client"
	"eyewnder/internal/detector"
	"eyewnder/internal/group"
	"eyewnder/internal/privacy"
	"eyewnder/internal/sketch"
	"eyewnder/internal/store"
	"eyewnder/internal/wire"
)

// The load harness: one process submitting an entire user population's
// blinded reports over a single shared connection, the way a real load
// generator (or an aggregation proxy) would. It exercises the batched
// streaming path end to end — wire.OpenReportStream with a window of
// frames in flight, adaptive server-side ack batching, per-connection
// decode/fold pipelining — instead of the one-shot submits the
// simulator's other modes use, and optionally runs the back-end on a
// durable round store so every report also pays its group-committed
// WAL append.
type loadConfig struct {
	users   int
	rounds  int
	window  int
	adsEach int
	dataDir string
}

// runLoad spins an in-process back-end, blinds one report per roster
// member per round, streams them all over one batched connection, and
// closes each round, printing per-round throughput.
func runLoad(cfg loadConfig) error {
	params := privacy.Params{Epsilon: 0.01, Delta: 0.01, IDSpace: 100000, Suite: group.P256()}
	var st store.Store
	if cfg.dataDir != "" {
		disk, err := store.Open(cfg.dataDir, store.Options{})
		if err != nil {
			return err
		}
		defer disk.Close()
		st = disk
	}
	be, err := backend.New(backend.Config{
		Params:         params,
		Users:          cfg.users,
		UsersEstimator: detector.EstimatorMean,
		Store:          st,
	})
	if err != nil {
		return err
	}
	defer be.Close()
	srv, err := be.Serve("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer srv.Close()

	cli, err := wire.Dial(srv.Addr())
	if err != nil {
		return err
	}
	defer cli.Close()

	// Adopt whatever the server's Welcome advertises — geometry, suite,
	// and config version — rather than mirroring the params above: the
	// harness then exercises the exact deployment path, and its frames
	// carry the version the aggregator checks.
	cf, err := cli.Handshake()
	if err != nil {
		return fmt.Errorf("config handshake: %w", err)
	}
	rcfg, err := client.RoundConfigFromFrame(cf)
	if err != nil {
		return err
	}
	params = rcfg.Params

	roster, err := blind.NewRosterKeystream(params.Suite, cfg.users, rand.Reader, params.Keystream)
	if err != nil {
		return err
	}

	d, w, err := sketch.Dimensions(params.Epsilon, params.Delta)
	if err != nil {
		return err
	}
	frameBytes := 8 * d * w
	fmt.Printf("load: %d users × %d rounds over one batched stream (config v%d, window %d, %d ads/user, %d-cell sketches%s)\n",
		cfg.users, cfg.rounds, rcfg.Version, cfg.window, cfg.adsEach, d*w, durabilityNote(cfg.dataDir))

	for round := uint64(1); round <= uint64(cfg.rounds); round++ {
		// Blind the whole population's reports for this round first, so
		// the timed section measures the wire+fold path, not the client
		// crypto.
		frames := make([]*wire.ReportFrame, cfg.users)
		for u := 0; u < cfg.users; u++ {
			cms, err := params.NewSketch()
			if err != nil {
				return err
			}
			var key [8]byte
			for a := 0; a < cfg.adsEach; a++ {
				binary.LittleEndian.PutUint64(key[:], uint64((u*131+a*17)%int(params.IDSpace)))
				cms.Update(key[:])
			}
			cells := cms.FlatCells()
			if err := blind.ApplyBlinding(cells, roster.Parties[u].Blinding(round, len(cells))); err != nil {
				return err
			}
			frames[u] = &wire.ReportFrame{
				User: u, Round: round,
				D: cms.Depth(), W: cms.Width(), N: cms.N(), Seed: cms.Seed(),
				Keystream:     byte(params.Keystream),
				ConfigVersion: rcfg.Version,
				Cells:         cells,
			}
		}

		rs, err := cli.OpenReportStream(cfg.window)
		if err != nil {
			return err
		}
		start := time.Now()
		for _, f := range frames {
			if err := rs.Submit(f); err != nil {
				return fmt.Errorf("round %d user %d: %w", round, f.User, err)
			}
		}
		if err := rs.Close(); err != nil {
			return err
		}
		elapsed := time.Since(start)

		var resp wire.CloseRoundResp
		if err := cli.Do(wire.TypeCloseRound, wire.CloseRoundReq{Round: round}, &resp); err != nil {
			return err
		}
		mb := float64(frameBytes) * float64(cfg.users) / (1 << 20)
		fmt.Printf("  round %d: %d reports in %v  (%.0f reports/s, %.1f MB/s)  Users_th=%.2f distinct ads=%d\n",
			round, cfg.users, elapsed.Round(time.Millisecond),
			float64(cfg.users)/elapsed.Seconds(), mb/elapsed.Seconds(),
			resp.UsersTh, resp.DistinctAds)
	}
	return nil
}

func durabilityNote(dataDir string) string {
	if dataDir == "" {
		return ""
	}
	return ", durable WAL in " + dataDir
}
