package wire

// Message type identifiers for the three Figure 1 conversations.
const (
	// Extension ↔ oprf-server.
	TypeOPRFPublicKey   = "oprf.public_key"
	TypeOPRFEvaluate    = "oprf.evaluate"
	TypeOPRFPublicKeyOK = "oprf.public_key_ok"
	TypeOPRFEvaluateOK  = "oprf.evaluate_ok"

	// Extension ↔ back-end.
	TypeRegister       = "backend.register"
	TypeRegisterOK     = "backend.register_ok"
	TypeRoster         = "backend.roster"
	TypeRosterOK       = "backend.roster_ok"
	TypeSubmitReport   = "backend.submit_report"
	TypeSubmitReportOK = "backend.submit_report_ok"
	TypeAckBatch       = "backend.ack_batch"
	TypeAckBatchOK     = "backend.ack_batch_ok"
	TypeRoundStatus    = "backend.round_status"
	TypeRoundStatusOK  = "backend.round_status_ok"
	TypeSubmitAdjust   = "backend.submit_adjustment"
	TypeSubmitAdjustOK = "backend.submit_adjustment_ok"
	TypeCloseRound     = "backend.close_round"
	TypeCloseRoundOK   = "backend.close_round_ok"
	TypeRoundCounts    = "backend.round_counts"
	TypeRoundCountsOK  = "backend.round_counts_ok"
	TypeThreshold      = "backend.threshold"
	TypeThresholdOK    = "backend.threshold_ok"
	TypeAuditAd        = "backend.audit_ad"
	TypeAuditAdOK      = "backend.audit_ad_ok"
	TypeCampaignAdd    = "backend.campaign_add"
	TypeCampaignAddOK  = "backend.campaign_add_ok"
	TypeCampaigns      = "backend.campaigns"
	TypeCampaignsOK    = "backend.campaigns_ok"

	// Back-end ↔ crawler.
	TypeCrawlVisit   = "crawler.visit"
	TypeCrawlVisitOK = "crawler.visit_ok"

	// Operator ↔ follower (replication admin; see internal/repl).
	TypePromote   = "repl.promote"
	TypePromoteOK = "repl.promote_ok"
)

// OPRFEvaluateReq carries a blinded group element (big-endian bytes).
type OPRFEvaluateReq struct {
	Blinded []byte `json:"blinded"`
}

// OPRFEvaluateResp carries the signed blinded element.
type OPRFEvaluateResp struct {
	Signed []byte `json:"signed"`
}

// OPRFPublicKeyResp publishes (N, e).
type OPRFPublicKeyResp struct {
	N []byte `json:"n"`
	E int    `json:"e"`
}

// RegisterReq enrolls a user with its blinding public key. The back-end
// doubles as the bulletin board of Section 6 (footnote 5: "the board may
// be as well hosted at the back-end server").
type RegisterReq struct {
	User      int    `json:"user"`
	PublicKey []byte `json:"public_key"`
}

// RegisterResp acknowledges enrollment.
type RegisterResp struct {
	RosterSize int `json:"roster_size"`
}

// RosterResp returns the bulletin board. Index i holds user i's key;
// unregistered slots are null. ConfigVersion and RosterVersion stamp
// the negotiated state the board is current at (absent = 0 from an
// older server): a client derives its pairwise blinding secrets from
// exactly this board, so its reports carry this ConfigVersion and the
// aggregator can reject reports blinded against a superseded roster.
// Board and versions travel in one response so no registration can
// slip between them.
type RosterResp struct {
	PublicKeys    [][]byte `json:"public_keys"`
	ConfigVersion uint32   `json:"config_version,omitempty"`
	RosterVersion uint32   `json:"roster_version,omitempty"`
}

// SubmitReportReq uploads a blinded CMS (binary serialization of
// sketch.CMS). Keystream is the blinding-suite byte (blind.Keystream);
// absent means suite 0, the original HMAC-SHA256 expansion, so old
// clients' reports still verify. ConfigVersion is the negotiated
// round-config version the report was built under (see handshake.go);
// absent means 0, "unversioned", the flag-agreement deployment style.
// Campaign scopes the report to a provisioned campaign's rounds;
// absent means campaign 0, the implicit deployment-wide campaign, so
// pre-campaign clients keep reporting unchanged.
type SubmitReportReq struct {
	User          int    `json:"user"`
	Campaign      uint32 `json:"campaign,omitempty"`
	Round         uint64 `json:"round"`
	Sketch        []byte `json:"sketch"`
	Keystream     byte   `json:"keystream,omitempty"`
	ConfigVersion uint32 `json:"config_version,omitempty"`
}

// AckBatchReq switches the connection's streamed-report acknowledgements
// to batched binary ack frames (see wire/batch.go). Answered by the wire
// server itself, not the application handler.
type AckBatchReq struct{}

// AckBatchResp returns the server's ack batch size k: one binary ack per
// k streamed frames (plus idle/round-boundary/marker flushes).
type AckBatchResp struct {
	K int `json:"k"`
}

// RoundStatusResp describes an open round's progress. Reported and
// Missing are one consistent observation (reported + len(missing) =
// roster size, always). Sealed means the round stopped admitting
// reports (a deadline close is in progress — see CloseRoundReq), so
// Missing is final: reporters compute their adjustment shares against
// exactly this list. Adjusted counts the reporters whose second-round
// shares have been stored so far. Both fields are absent from older
// servers and decode as zero values.
type RoundStatusResp struct {
	Campaign uint32 `json:"campaign,omitempty"`
	Round    uint64 `json:"round"`
	Reported int    `json:"reported"`
	Missing  []int  `json:"missing"`
	Closed   bool   `json:"closed"`
	Sealed   bool   `json:"sealed,omitempty"`
	Adjusted int    `json:"adjusted,omitempty"`
}

// SubmitAdjustReq uploads a second-round adjustment share.
// ConfigVersion is the negotiated round-config version the share's
// pairwise terms were derived under; absent means 0, "unversioned",
// accepted by any round. A stale nonzero version is rejected: the
// share's terms come from a superseded roster and could not cancel.
type SubmitAdjustReq struct {
	User          int      `json:"user"`
	Campaign      uint32   `json:"campaign,omitempty"`
	Round         uint64   `json:"round"`
	Cells         []uint64 `json:"cells"`
	ConfigVersion uint32   `json:"config_version,omitempty"`
}

// CloseRoundReq finalizes a round: the back-end unblinds the aggregate
// and computes the Users_th threshold. A nonzero AdjustWaitMS makes it
// a deadline close: the round first *seals* (stops admitting reports,
// freezing the missing set) and the close then waits up to the given
// milliseconds for every reporter's adjustment share to land before
// finalizing — the shutter the churn harness uses to close rounds with
// permanently-lost users. Absent (or 0) preserves the original
// immediate-close behavior.
type CloseRoundReq struct {
	Campaign     uint32 `json:"campaign,omitempty"`
	Round        uint64 `json:"round"`
	AdjustWaitMS int64  `json:"adjust_wait_ms,omitempty"`
}

// CloseRoundResp reports the computed global statistics.
type CloseRoundResp struct {
	Campaign    uint32  `json:"campaign,omitempty"`
	Round       uint64  `json:"round"`
	UsersTh     float64 `json:"users_th"`
	DistinctAds int     `json:"distinct_ads"`
}

// RoundCountsReq asks for a closed round's full per-ad-ID user-count
// map — the byte-exact ground the churn harness compares its trace
// oracle against (auditing IDs one by one would cost IDSpace round
// trips per round).
type RoundCountsReq struct {
	Campaign uint32 `json:"campaign,omitempty"`
	Round    uint64 `json:"round"`
}

// RoundCountsResp returns the per-ad-ID estimated user counts of a
// closed round (JSON object keys are the decimal ad IDs).
type RoundCountsResp struct {
	Campaign uint32            `json:"campaign,omitempty"`
	Round    uint64            `json:"round"`
	Counts   map[uint64]uint64 `json:"counts"`
}

// ThresholdReq asks for a closed round's Users_th (Figure 1, arrow 5).
type ThresholdReq struct {
	Campaign uint32 `json:"campaign,omitempty"`
	Round    uint64 `json:"round"`
}

// ThresholdResp returns the published threshold.
type ThresholdResp struct {
	Campaign uint32  `json:"campaign,omitempty"`
	Round    uint64  `json:"round"`
	UsersTh  float64 `json:"users_th"`
}

// AuditAdReq asks the back-end for #Users of an ad ID so the extension
// can finish a real-time audit.
type AuditAdReq struct {
	Campaign uint32 `json:"campaign,omitempty"`
	Round    uint64 `json:"round"`
	AdID     uint64 `json:"ad_id"`
}

// AuditAdResp returns the estimated user count.
type AuditAdResp struct {
	Users uint64 `json:"users"`
}

// CampaignAddReq provisions (or re-provisions, last write wins) a
// counting campaign on a primary. The fields mirror
// campaign.Campaign; zero geometry fields inherit the deployment base
// params. Admin-plane: served by eyewnder-server's admin listener, not
// the public report endpoint.
type CampaignAddReq struct {
	ID           uint32  `json:"id"`
	Name         string  `json:"name,omitempty"`
	Epsilon      float64 `json:"epsilon,omitempty"`
	Delta        float64 `json:"delta,omitempty"`
	IDSpace      uint64  `json:"id_space,omitempty"`
	Keystream    byte    `json:"keystream,omitempty"`
	KeystreamSet bool    `json:"keystream_set,omitempty"`
	RetainRounds int     `json:"retain_rounds,omitempty"`
	CadenceSec   uint32  `json:"cadence_sec,omitempty"`
}

// CampaignAddResp acknowledges a provisioned campaign. Campaigns is the
// directory size after the add — the operator's check that the
// directory actually grew (or stayed put on a re-provision).
type CampaignAddResp struct {
	ID        uint32 `json:"id"`
	Campaigns int    `json:"campaigns"`
}

// CampaignsReq lists the provisioned campaign directory.
type CampaignsReq struct{}

// CampaignInfo is one directory entry as the JSON admin plane renders
// it (the binary directory frame is the client-facing form).
type CampaignInfo struct {
	ID           uint32  `json:"id"`
	Name         string  `json:"name,omitempty"`
	Epsilon      float64 `json:"epsilon,omitempty"`
	Delta        float64 `json:"delta,omitempty"`
	IDSpace      uint64  `json:"id_space,omitempty"`
	Keystream    byte    `json:"keystream,omitempty"`
	KeystreamSet bool    `json:"keystream_set,omitempty"`
	RetainRounds int     `json:"retain_rounds,omitempty"`
	CadenceSec   uint32  `json:"cadence_sec,omitempty"`
}

// CampaignsResp returns the directory in ID order.
type CampaignsResp struct {
	Campaigns []CampaignInfo `json:"campaigns"`
}

// PromoteReq asks a follower to stop replicating and take over as
// primary (the admin-op twin of SIGUSR1; see internal/repl). The
// follower detaches from its primary, re-opens its mirrored data
// directory through the recovery path, and starts serving writes.
type PromoteReq struct{}

// PromoteResp acknowledges a promotion. Rounds is the number of rounds
// the promoted store recovered — the operator's quick sanity check that
// the mirror actually held state.
type PromoteResp struct {
	Rounds int `json:"rounds"`
}

// CrawlVisitReq instructs the crawler to visit a site with a clean
// profile (Figure 1, arrow 3).
type CrawlVisitReq struct {
	Site int `json:"site"`
}

// CrawlVisitResp returns the ad keys collected on the visit (arrow 4).
type CrawlVisitResp struct {
	AdKeys []string `json:"ad_keys"`
}
