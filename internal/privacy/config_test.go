package privacy

import (
	"errors"
	"testing"

	"eyewnder/internal/blind"
)

// versionedConfig is smallParams pinned to a nonzero config version, as
// a negotiated deployment would run.
func versionedConfig(t *testing.T, version, rosterVersion uint32) RoundConfig {
	t.Helper()
	return RoundConfig{
		Version:       version,
		RosterVersion: rosterVersion,
		RosterSize:    6,
		Params:        smallParams(),
	}
}

func TestCompatibleReportVersion(t *testing.T) {
	cases := []struct {
		round, report uint32
		want          bool
	}{
		{0, 0, true},  // unversioned everywhere: legacy
		{0, 7, true},  // legacy round defers to geometry/suite checks
		{4, 0, true},  // legacy report into a versioned round
		{4, 4, true},  // exact match
		{4, 3, false}, // stale reporter
		{4, 5, false}, // reporter from the future (roster moved on)
	}
	for _, c := range cases {
		cfg := RoundConfig{Version: c.round}
		if got := cfg.CompatibleReportVersion(c.report); got != c.want {
			t.Errorf("round v%d, report v%d: compatible = %v, want %v", c.round, c.report, got, c.want)
		}
	}
}

// A report stamped with a different config version than the round's
// must bounce with ErrIncompatibleConfig — before any duplicate slot is
// taken — on both the structured and the streamed ingestion paths.
func TestAggregatorRejectsStaleConfigVersion(t *testing.T) {
	clients := newClients(t, smallParams())
	agg, err := NewAggregator(versionedConfig(t, 4, 2), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := clients[0].ObserveAd("https://ads.example/a"); err != nil {
		t.Fatal(err)
	}
	r, err := clients[0].Report(1)
	if err != nil {
		t.Fatal(err)
	}

	stale := *r
	stale.ConfigVersion = 3
	if err := agg.Add(&stale); !errors.Is(err, ErrIncompatibleConfig) {
		t.Fatalf("stale version err = %v, want ErrIncompatibleConfig", err)
	}
	cms := r.Sketch
	err = agg.AddCells(r.User, cms.Depth(), cms.Width(), cms.N(), cms.Seed(),
		blind.KeystreamHMACSHA256, 3, cms.FlatCells())
	if !errors.Is(err, ErrIncompatibleConfig) {
		t.Fatalf("stale streamed version err = %v, want ErrIncompatibleConfig", err)
	}
	// The rejection must not have consumed the user's roster slot.
	if agg.Reported() != 0 {
		t.Fatalf("rejected report reserved a slot: Reported = %d", agg.Reported())
	}

	// A legacy (version-0) report and an exact match both fold.
	if err := agg.Add(r); err != nil { // clients stamp 0 (unversioned config)
		t.Fatalf("legacy report err = %v", err)
	}
	if _, err := clients[1].ObserveAd("https://ads.example/a"); err != nil {
		t.Fatal(err)
	}
	r2, err := clients[1].Report(1)
	if err != nil {
		t.Fatal(err)
	}
	r2.ConfigVersion = 4
	if err := agg.Add(r2); err != nil {
		t.Fatalf("matching version err = %v", err)
	}
	if agg.Reported() != 2 {
		t.Fatalf("Reported = %d, want 2", agg.Reported())
	}
}

// A client built under a versioned config stamps its reports with that
// version.
func TestClientStampsConfigVersion(t *testing.T) {
	srv, ros := fixtures(t)
	cfg := versionedConfig(t, 9, 4)
	c := NewClient(cfg, ros.Parties[0], srv.PublicKey(), srv)
	if _, err := c.ObserveAd("https://ads.example/x"); err != nil {
		t.Fatal(err)
	}
	r, err := c.Report(3)
	if err != nil {
		t.Fatal(err)
	}
	if r.ConfigVersion != 9 {
		t.Fatalf("report config version = %d, want 9", r.ConfigVersion)
	}
	agg, err := NewAggregator(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := agg.Add(r); err != nil {
		t.Fatal(err)
	}
}

// A restored aggregator keeps the round's pinned config: stale versions
// bounce after recovery exactly as before it.
func TestRestoredAggregatorKeepsConfigVersion(t *testing.T) {
	cfg := versionedConfig(t, 4, 2)
	agg, err := NewAggregator(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	d, w, seed := agg.Layout()
	_, _, _, n, _, cells, reported := agg.SnapshotState()
	restored, err := RestoreAggregatorStripes(cfg, 1, 0, cells, n, seed, reported)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Config() != cfg {
		t.Fatalf("restored config = %+v, want %+v", restored.Config(), cfg)
	}
	err = restored.AddCells(0, d, w, 1, seed, blind.KeystreamHMACSHA256, 3, make([]uint64, d*w))
	if !errors.Is(err, ErrIncompatibleConfig) {
		t.Fatalf("stale version after restore = %v, want ErrIncompatibleConfig", err)
	}
}
