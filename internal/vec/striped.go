package vec

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Striped guards a uint64 vector with one lock per contiguous stripe so
// that several goroutines can fold source vectors into it concurrently.
// A plain mutex around Add serializes every merge into a hot aggregation
// round; with striping, reporter k starts at stripe k mod S (a rotating
// offset) and walks all S stripes wrapping around, so concurrent
// reporters pipeline through disjoint stripes and the merge throughput
// of one round scales with cores instead of degrading to a convoy on a
// single round lock.
//
// Stripe boundaries are fixed at construction. Reads of the underlying
// vector (finalize, serialization) are NOT synchronized by Striped; the
// caller must exclude writers first (the back-end does this with a
// per-round RWMutex: reporters hold the read side, close holds the
// write side).
type Striped struct {
	dst    []uint64
	bounds []int // len(stripes)+1 boundaries; stripe i is [bounds[i], bounds[i+1])
	locks  []paddedMutex
	next   atomic.Uint32 // rotating start stripe, decorrelates concurrent adders
}

// paddedMutex spaces stripe locks a cache line apart so two cores
// spinning on neighbouring stripes do not false-share.
type paddedMutex struct {
	sync.Mutex
	_ [56]byte
}

// minStripeElems keeps *default* stripes large enough that the
// per-stripe lock/unlock amortizes over the adds it covers: 512 uint64s
// is ~150 ns of adds against ~25 ns of uncontended lock traffic. An
// explicit stripe count is honored as requested (clamped only to the
// vector length), so operators and benchmarks get exactly the striping
// they ask for.
const minStripeElems = 1 << 9

// EffectiveStripes returns the stripe count NewStriped would use for a
// vector of length n: an explicit request (stripes >= 1) clamped to n,
// or the default of 2×GOMAXPROCS capped so each stripe holds at least
// minStripeElems elements. Exposed so servers can report the striping
// actually in effect.
func EffectiveStripes(n, stripes int) int {
	if stripes <= 0 {
		stripes = 2 * runtime.GOMAXPROCS(0)
		if max := n / minStripeElems; stripes > max {
			stripes = max
		}
	}
	if stripes > n {
		stripes = n
	}
	if stripes < 1 {
		stripes = 1
	}
	return stripes
}

// NewStriped wraps dst with stripes locks. stripes <= 0 picks a default
// (see EffectiveStripes); stripes == 1 degenerates to one plain lock,
// the explicit baseline in benchmarks.
func NewStriped(dst []uint64, stripes int) *Striped {
	stripes = EffectiveStripes(len(dst), stripes)
	s := &Striped{
		dst:    dst,
		bounds: make([]int, stripes+1),
		locks:  make([]paddedMutex, stripes),
	}
	chunk := (len(dst) + stripes - 1) / stripes
	for i := 1; i < stripes; i++ {
		s.bounds[i] = i * chunk
	}
	s.bounds[stripes] = len(dst)
	return s
}

// Stripes returns the number of stripes (1 means a single plain lock).
func (s *Striped) Stripes() int { return len(s.locks) }

// Len returns the length of the underlying vector.
func (s *Striped) Len() int { return len(s.dst) }

// Add folds src into the striped vector element-wise modulo 2⁶⁴. src
// must have the underlying vector's length (mismatch panics, as in Add).
// Safe for any number of concurrent callers.
func (s *Striped) Add(src []uint64) {
	if len(src) != len(s.dst) {
		panic("vec: length mismatch")
	}
	k := len(s.locks)
	start := int(s.next.Add(1)-1) % k
	for i := 0; i < k; i++ {
		j := start + i
		if j >= k {
			j -= k
		}
		lo, hi := s.bounds[j], s.bounds[j+1]
		s.locks[j].Lock()
		addImpl(s.dst[lo:hi], src[lo:hi])
		s.locks[j].Unlock()
	}
}
