// Command eyewnder-server runs the two server-side components of the
// eyeWnder deployment: the back-end (bulletin board, blinded-report
// aggregation, threshold publication, audits) and the oprf-server (which
// holds the ad-ID mapping key the back-end must never see).
//
// Usage:
//
//	eyewnder-server -backend 127.0.0.1:7001 -oprf 127.0.0.1:7002 -users 100
//
// With -data-dir the back-end's rounds are durable: every round event
// is write-ahead logged (fsynced at acknowledgement barriers, see
// -fsync) and snapshotted, and a restart on the same directory recovers
// every round — reported bitmaps, adjustment shares, closed results —
// exactly where the previous process left them.
//
// With -repl the primary additionally serves segment shipping: a second
// listener followers pull WAL segments and snapshots from. A follower
// runs the same binary with -follow pointed at that listener; it
// mirrors the primary's store into its own -data-dir, keeps a warm
// read-only replica answering queries, and is promoted to the writable
// primary by SIGUSR1 or a repl.promote message — taking over mid-round
// with exactly the state the dead primary had acknowledged. See
// OPERATIONS.md for the full runbook.
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"sync"
	"time"

	"eyewnder/internal/backend"
	"eyewnder/internal/blind"
	"eyewnder/internal/campaign"
	"eyewnder/internal/detector"
	"eyewnder/internal/group"
	"eyewnder/internal/obs"
	"eyewnder/internal/oprf"
	"eyewnder/internal/privacy"
	"eyewnder/internal/repl"
	"eyewnder/internal/store"
	"eyewnder/internal/wire"
)

func main() {
	var (
		backendAddr = flag.String("backend", "127.0.0.1:7001", "back-end listen address")
		oprfAddr    = flag.String("oprf", "127.0.0.1:7002", "oprf-server listen address")
		users       = flag.Int("users", 100, "roster size (number of enrolled users)")
		rsaBits     = flag.Int("rsa-bits", 2048, "oprf RSA modulus size")
		epsilon     = flag.Float64("epsilon", 0.01, "CMS epsilon")
		delta       = flag.Float64("delta", 0.01, "CMS delta")
		idSpace     = flag.Uint64("id-space", 100000, "ad-ID space size |A| (overestimate)")
		stripes     = flag.Int("merge-stripes", 0, "intra-round merge stripes (0 = 2×GOMAXPROCS, 1 = single merge lock)")
		ackBatch    = flag.Int("ack-batch", 0, "streamed-report ack batch k for batched-ack connections (0 = adaptive per connection, 1 = ack every frame)")
		keystream   = flag.String("keystream", "hmac-sha256", "blinding keystream suite, advertised to clients in the config handshake: hmac-sha256 or aes-ctr")
		retain      = flag.Int("retain-rounds", 0, "age a closed round out of memory and snapshots once its Users_th has been served for N newer closed rounds (0 = keep forever)")
		dataDir     = flag.String("data-dir", "", "durable round store directory: WAL + snapshots, crash recovery on restart (empty = in-memory rounds only)")
		fsync       = flag.String("fsync", "batch", "WAL fsync policy with -data-dir: batch (group-committed at ack barriers), always (every append), off (OS page cache only)")
		snapEvery   = flag.Int("snapshot-every", 0, "reports between WAL-compacting snapshots with -data-dir (0 = default, negative = never)")
		replAddr    = flag.String("repl", "", "segment-shipping listen address: serve WAL segments and snapshots to followers (requires -data-dir)")
		follow      = flag.String("follow", "", "run as a hot-standby follower of the primary's -repl address, mirroring into -data-dir (promote with SIGUSR1 or a repl.promote message)")
		replPoll    = flag.Duration("repl-poll", repl.DefaultPoll, "follower manifest poll interval with -follow (how far the warm replica may trail the primary)")
		replChunk   = flag.Int("repl-chunk", repl.DefaultChunk, "replication fetch chunk size in bytes with -follow")
		replRetain  = flag.Int("repl-retain", 2, "sealed WAL segments kept across snapshot pruning with -repl, so a briefly-lagging follower avoids a full snapshot resync")
		adminAddr   = flag.String("admin", "", "admin HTTP listen address serving /metrics (Prometheus text), /metrics.json, /statusz, /healthz, and /debug/pprof (empty = off)")
		campaigns   = flag.String("campaigns", "", "counting campaigns to provision at startup, as semicolon-separated specs: \"id=1,name=autos,eps=0.02,delta=0.01,idspace=4096,keystream=aes-ctr,retain=4,cadence=600;id=2,...\" — zero fields inherit the deployment base; re-provisioning an existing ID is last-write-wins and applies to future rounds only")
		replStatus  = flag.Duration("repl-status-every", 30*time.Second, "interval between follower replication status log lines with -follow (0 disables; the same state is always live on -admin's /statusz)")
	)
	flag.Parse()

	ks, err := blind.KeystreamByName(*keystream)
	if err != nil {
		log.Fatalf("keystream: %v", err)
	}
	var mode store.SyncMode
	switch *fsync {
	case "batch":
		mode = store.SyncBatch
	case "always":
		mode = store.SyncAlways
	case "off":
		mode = store.SyncOff
	default:
		log.Fatalf("-fsync %q: want batch, always, or off", *fsync)
	}
	// One registry for the whole process: every layer registers its
	// instruments here, and the admin endpoint (when enabled) serves the
	// same registry — so /metrics, /statusz, and the log lines are views
	// over one set of counters. Registration is idempotent by name, so a
	// promotion (which builds a fresh back-end and store) continues the
	// same counters.
	reg := obs.New()
	storeOpts := store.Options{Sync: mode, SnapshotEvery: *snapEvery, Metrics: reg}
	if *replAddr != "" {
		storeOpts.RetainSegments = *replRetain
	}
	params := privacy.Params{Epsilon: *epsilon, Delta: *delta, IDSpace: *idSpace, Suite: group.P256(), Keystream: ks}
	beCfg := backend.Config{
		Params:         params,
		Users:          *users,
		UsersEstimator: detector.EstimatorMean,
		MergeStripes:   *stripes,
		AckBatch:       *ackBatch,
		RetainRounds:   *retain,
		Metrics:        reg,
	}
	osrv, err := oprf.NewServer(*rsaBits)
	if err != nil {
		log.Fatalf("oprf key generation: %v", err)
	}

	if *follow != "" {
		runFollower(followerConfig{
			primary: *follow, backendAddr: *backendAddr, oprfAddr: *oprfAddr,
			replAddr: *replAddr, adminAddr: *adminAddr,
			statusEvery: *replStatus, fsync: mode, reg: reg,
		}, osrv, beCfg, repl.Options{
			Dir: *dataDir, Addr: *follow,
			Poll: *replPoll, Chunk: *replChunk,
			StoreOpts: storeOpts,
			Logf:      log.Printf,
			Metrics:   reg,
		})
		return
	}

	var disk *store.Disk
	var st store.Store
	if *dataDir != "" {
		disk, err = store.Open(*dataDir, storeOpts)
		if err != nil {
			log.Fatalf("round store: %v", err)
		}
		defer disk.Close()
		st = disk
		log.Printf("round store in %s (fsync=%s, %d rounds and %d registrations recovered)",
			*dataDir, *fsync, len(disk.Rounds()), len(disk.Roster()))
	}
	beCfg.Store = st
	be, err := backend.New(beCfg)
	if err != nil {
		log.Fatalf("back-end: %v", err)
	}
	defer be.Close()
	if *campaigns != "" {
		list, err := campaign.ParseSpec(*campaigns)
		if err != nil {
			log.Fatalf("-campaigns: %v", err)
		}
		for _, c := range list {
			if err := be.AddCampaign(c); err != nil {
				log.Fatalf("-campaigns: provisioning campaign %d: %v", c.ID, err)
			}
		}
		log.Printf("provisioned %d campaigns (directory now %d entries)", len(list), len(be.Campaigns()))
	}
	beSrv, err := be.Serve(*backendAddr)
	if err != nil {
		log.Fatalf("back-end listen: %v", err)
	}
	defer beSrv.Close()
	opSrv, err := backend.ServeOPRF(*oprfAddr, osrv)
	if err != nil {
		log.Fatalf("oprf listen: %v", err)
	}
	defer opSrv.Close()
	if *replAddr != "" {
		if disk == nil {
			log.Fatal("-repl requires -data-dir (there is no WAL to ship without one)")
		}
		rp, err := repl.ServePrimary(*replAddr, disk)
		if err != nil {
			log.Fatalf("replication listen: %v", err)
		}
		defer rp.Close()
		log.Printf("segment shipping on %s (retaining %d sealed segments across snapshots)", rp.Addr(), *replRetain)
	}
	if *adminAddr != "" {
		admin, err := obs.ServeAdmin(*adminAddr, obs.AdminOptions{
			Registry: reg,
			Status: func() any {
				return primaryStatusz(be, disk, mode)
			},
			Health: func() obs.Health {
				return obs.Health{OK: true, Role: "primary", Detail: "serving"}
			},
		})
		if err != nil {
			log.Fatalf("admin listen: %v", err)
		}
		defer admin.Close()
		log.Printf("admin endpoint on %s (/metrics, /statusz, /healthz, /debug/pprof)", admin.Addr())
	}

	cfg := be.CurrentConfig()
	log.Printf("back-end on %s (config v%d, roster v%d with %d users, ε=%g δ=%g |A|=%d, streamed reports on, merge stripes=%d, ack batch=%d, keystream=%s, durable=%v, retain=%d)",
		beSrv.Addr(), cfg.Version, cfg.RosterVersion, *users, *epsilon, *delta, *idSpace,
		be.MergeStripes(), *ackBatch, ks, *dataDir != "", *retain)
	log.Printf("oprf-server on %s (RSA-%d)", opSrv.Addr(), *rsaBits)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	log.Print("shutting down")
}

// statusz is the one consistent process-state snapshot /statusz
// serves: role, negotiated versions, per-round progress, and (when
// present) durable-store and replication state. Every field is read
// from the same live objects the serving path uses, so the page can
// never drift from reality.
type statusz struct {
	Role          string                  `json:"role"`
	ConfigVersion uint32                  `json:"config_version"`
	RosterVersion uint32                  `json:"roster_version"`
	Campaigns     []campaignStatusz       `json:"campaigns,omitempty"`
	Rounds        []backend.RoundSnapshot `json:"rounds"`
	Store         *storeStatusz           `json:"store,omitempty"`
	Repl          *replStatusz            `json:"repl,omitempty"`
}

// campaignStatusz is one provisioned campaign as /statusz renders it:
// the directory entry plus the number of live rounds keyed to it.
type campaignStatusz struct {
	ID         uint32  `json:"id"`
	Name       string  `json:"name,omitempty"`
	Epsilon    float64 `json:"epsilon,omitempty"`
	Delta      float64 `json:"delta,omitempty"`
	IDSpace    uint64  `json:"id_space,omitempty"`
	Keystream  byte    `json:"keystream,omitempty"`
	Retain     int     `json:"retain_rounds,omitempty"`
	CadenceSec uint32  `json:"cadence_sec,omitempty"`
	Rounds     int     `json:"rounds"`
}

// campaignStatuszOf renders the back-end's campaign directory with
// per-campaign live-round counts from the same progress snapshot the
// rounds section shows.
func campaignStatuszOf(be *backend.Backend, rounds []backend.RoundSnapshot) []campaignStatusz {
	byCampaign := make(map[uint32]int)
	for _, r := range rounds {
		byCampaign[r.Campaign]++
	}
	list := be.Campaigns()
	out := make([]campaignStatusz, len(list))
	for i, c := range list {
		out[i] = campaignStatusz{
			ID: c.ID, Name: c.Name,
			Epsilon: c.Epsilon, Delta: c.Delta, IDSpace: c.IDSpace,
			Keystream:  byte(c.Keystream),
			Retain:     c.RetainRounds,
			CadenceSec: c.CadenceSec,
			Rounds:     byCampaign[c.ID],
		}
	}
	return out
}

// storeStatusz is the durable-store section of /statusz.
type storeStatusz struct {
	Generation uint64 `json:"generation"`
	Fsync      string `json:"fsync"`
}

// replStatusz is the replication section of a follower's /statusz —
// repl.Status rendered for JSON.
type replStatusz struct {
	Connected bool   `json:"connected"`
	CaughtUp  bool   `json:"caught_up"`
	TailGen   uint64 `json:"tail_gen"`
	TailOff   int64  `json:"tail_off"`
	RemoteGen uint64 `json:"remote_gen"`
	RemoteOff int64  `json:"remote_off"`
	Events    uint64 `json:"events"`
	Resyncs   uint64 `json:"resyncs"`
	Err       string `json:"error,omitempty"`
}

// primaryStatusz snapshots a primary's state for /statusz.
func primaryStatusz(be *backend.Backend, disk *store.Disk, mode store.SyncMode) statusz {
	cfg := be.CurrentConfig()
	rounds := be.RoundsProgress()
	st := statusz{
		Role:          "primary",
		ConfigVersion: cfg.Version,
		RosterVersion: cfg.RosterVersion,
		Campaigns:     campaignStatuszOf(be, rounds),
		Rounds:        rounds,
	}
	if disk != nil {
		st.Store = &storeStatusz{Generation: disk.Generation(), Fsync: mode.String()}
	}
	return st
}

// replStatuszOf renders a follower's replication status for /statusz.
func replStatuszOf(s repl.Status) *replStatusz {
	out := &replStatusz{
		Connected: s.Connected, CaughtUp: s.CaughtUp,
		TailGen: s.TailGen, TailOff: s.TailOff,
		RemoteGen: s.RemoteGen, RemoteOff: s.RemoteOff,
		Events: s.Events, Resyncs: s.Resyncs,
	}
	if s.Err != nil {
		out.Err = s.Err.Error()
	}
	return out
}

// node is the follower front-end: one wire server whose handler and
// report sink route to whichever back-end is current — the warm
// read-only replica while following, the writable promoted back-end
// afterwards. The listener never restarts across promotion, so clients
// keep one address for the standby through its whole life.
type node struct {
	mu       sync.Mutex
	follower *repl.Follower
	promoted *backend.Backend
	disk     *store.Disk
	repl     *repl.Primary
	rounds   int // recovered rounds at promotion (repl.promote's sanity answer)

	replAddr  string // serve segment shipping here after promotion ("" = don't)
	replRet   int
	storeOpts store.Options
}

// backend returns the back-end currently serving this node.
func (n *node) backend() *backend.Backend {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.promoted != nil {
		return n.promoted
	}
	return n.follower.Replica()
}

// ConsumeReport implements wire.ReportSink against the current
// back-end (a replica refuses with ErrReadOnlyReplica until promotion).
func (n *node) ConsumeReport(f *wire.ReportFrame) error { return n.backend().ConsumeReport(f) }

// SyncReports implements wire.ReportDurability against the current
// back-end, so acknowledgements become fsync barriers the moment the
// node is promoted onto a writable store.
func (n *node) SyncReports() error { return n.backend().SyncReports() }

// handler answers promotion requests itself and routes everything else
// to the current back-end's handler.
func (n *node) handler() wire.Handler {
	return func(m *wire.Msg) (string, interface{}, error) {
		if m.Type == wire.TypePromote {
			rounds, err := n.promote()
			if err != nil {
				return "", nil, err
			}
			return wire.TypePromoteOK, wire.PromoteResp{Rounds: rounds}, nil
		}
		return n.backend().Handler()(m)
	}
}

// promote performs the takeover exactly once: stop tailing, re-open
// the mirror through crash recovery, swap the writable back-end in,
// and start shipping segments to the next generation of followers if
// configured. Repeat calls are idempotent (an operator retrying the
// trigger must not fail).
func (n *node) promote() (int, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.promoted != nil {
		return n.rounds, nil
	}
	b, disk, err := n.follower.Promote()
	if err != nil {
		return 0, err
	}
	n.promoted, n.disk = b, disk
	n.rounds = len(disk.Rounds())
	log.Printf("promoted: %d rounds recovered from the mirror, now writable", n.rounds)
	if n.replAddr != "" {
		rp, err := repl.ServePrimary(n.replAddr, disk)
		if err != nil {
			log.Printf("segment shipping after promotion: %v", err)
		} else {
			n.repl = rp
			log.Printf("segment shipping on %s (retaining %d sealed segments across snapshots)", rp.Addr(), n.replRet)
		}
	}
	return n.rounds, nil
}

// followerConfig bundles runFollower's flag-derived settings.
type followerConfig struct {
	primary     string
	backendAddr string
	oprfAddr    string
	replAddr    string
	adminAddr   string
	statusEvery time.Duration
	fsync       store.SyncMode
	reg         *obs.Registry
}

// runFollower is the -follow main loop: start the follower, serve the
// warm replica on the ordinary back-end address, and wait for a
// promotion trigger or shutdown.
func runFollower(fc followerConfig, osrv *oprf.Server, beCfg backend.Config, opts repl.Options) {
	if opts.Dir == "" {
		log.Fatal("-follow requires -data-dir (the local mirror promotion re-opens)")
	}
	f, err := repl.StartFollower(opts, beCfg)
	if err != nil {
		log.Fatalf("follower: %v", err)
	}
	n := &node{
		follower:  f,
		replAddr:  fc.replAddr,
		replRet:   opts.StoreOpts.RetainSegments,
		storeOpts: opts.StoreOpts,
	}
	srv, err := wire.ServeWithSinkOpts(fc.backendAddr, n.handler(), n, wire.StreamOpts{
		AckBatch:  beCfg.AckBatch,
		Config:    func() wire.ConfigFrame { return n.backend().WireConfig() },
		Campaigns: func() []campaign.Campaign { return n.backend().Campaigns() },
		Metrics:   fc.reg,
	})
	if err != nil {
		log.Fatalf("follower listen: %v", err)
	}
	defer srv.Close()
	if fc.adminAddr != "" {
		admin, err := obs.ServeAdmin(fc.adminAddr, obs.AdminOptions{
			Registry: fc.reg,
			Status:   func() any { return n.statusz(f, fc.fsync) },
			Health:   func() obs.Health { return n.health(f) },
		})
		if err != nil {
			log.Fatalf("admin listen: %v", err)
		}
		defer admin.Close()
		log.Printf("admin endpoint on %s (/metrics, /statusz, /healthz, /debug/pprof)", admin.Addr())
	}
	// The follower runs its own oprf-server with a fresh key: the OPRF
	// key is per-process and never persisted (by design — it maps ad
	// IDs, not round state). After promotion, clients re-fetch the
	// public key; see OPERATIONS.md for what that means for audits.
	opSrv, err := backend.ServeOPRF(fc.oprfAddr, osrv)
	if err != nil {
		log.Fatalf("oprf listen: %v", err)
	}
	defer opSrv.Close()
	s := f.Status()
	log.Printf("following %s into %s (poll %s, tail gen %d, %d events applied, serving warm replica on %s)",
		fc.primary, opts.Dir, opts.Poll, s.TailGen, s.Events, srv.Addr())
	log.Printf("oprf-server on %s", opSrv.Addr())

	interrupt := make(chan os.Signal, 1)
	signal.Notify(interrupt, os.Interrupt)
	promoteCh := notifyPromote()
	// -repl-status-every 0 disables the periodic line: a nil channel
	// never fires. The line renders the same repl.Status snapshot the
	// /statusz page and the registry gauges read, so the views cannot
	// disagree.
	var statusC <-chan time.Time
	if fc.statusEvery > 0 {
		statusTick := time.NewTicker(fc.statusEvery)
		defer statusTick.Stop()
		statusC = statusTick.C
	}
	for {
		select {
		case <-interrupt:
			log.Print("shutting down")
			n.mu.Lock()
			if n.promoted != nil {
				if n.repl != nil {
					n.repl.Close()
				}
				n.promoted.Close()
				n.disk.Close()
			}
			n.mu.Unlock()
			if n.backendIsReplica() {
				f.Stop()
			}
			return
		case <-promoteCh:
			if _, err := n.promote(); err != nil {
				log.Printf("promotion failed: %v", err)
			}
		case <-statusC:
			if n.backendIsReplica() {
				s := f.Status()
				if s.Err != nil {
					log.Printf("replication stopped: %v (warm replica still serving; promotion refused)", s.Err)
				} else {
					log.Printf("replication: connected=%v caught_up=%v tail=%d@%d remote=%d@%d events=%d resyncs=%d",
						s.Connected, s.CaughtUp, s.TailGen, s.TailOff, s.RemoteGen, s.RemoteOff, s.Events, s.Resyncs)
				}
			}
		}
	}
}

// statusz snapshots the node's state for /statusz: the replication
// view while following, the store view after promotion — always over
// whichever back-end is currently serving.
func (n *node) statusz(f *repl.Follower, mode store.SyncMode) statusz {
	b := n.backend()
	cfg := b.CurrentConfig()
	rounds := b.RoundsProgress()
	st := statusz{
		Role:          "follower",
		ConfigVersion: cfg.Version,
		RosterVersion: cfg.RosterVersion,
		Campaigns:     campaignStatuszOf(b, rounds),
		Rounds:        rounds,
	}
	n.mu.Lock()
	promoted, disk := n.promoted != nil, n.disk
	n.mu.Unlock()
	if promoted {
		st.Role = "primary"
		if disk != nil {
			st.Store = &storeStatusz{Generation: disk.Generation(), Fsync: mode.String()}
		}
		return st
	}
	st.Repl = replStatuszOf(f.Status())
	return st
}

// health answers /healthz: a promoted node is a serving primary; a
// follower is healthy while replication runs (reporting warm-replica
// vs caught-up) and unhealthy only once replication has fatally
// stopped — the state in which promotion would be refused.
func (n *node) health(f *repl.Follower) obs.Health {
	if !n.backendIsReplica() {
		return obs.Health{OK: true, Role: "primary", Detail: "promoted"}
	}
	s := f.Status()
	switch {
	case s.Err != nil:
		return obs.Health{OK: false, Role: "follower", Detail: "replication stopped: " + s.Err.Error()}
	case s.CaughtUp:
		return obs.Health{OK: true, Role: "follower", Detail: "caught-up"}
	}
	return obs.Health{OK: true, Role: "follower", Detail: "warm-replica"}
}

// backendIsReplica reports whether the node is still in standby mode.
func (n *node) backendIsReplica() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.promoted == nil
}
