package store

import (
	"encoding/binary"
	"sort"

	"eyewnder/internal/vec"
)

// Replay: applying WAL records to recovered state.
//
// The applier mirrors the live aggregator's acceptance rules exactly —
// unknown round, out-of-roster user, duplicate report, mismatched cell
// layout, mismatched blinding suite, stale round-config version, and
// closed round are all *skipped*, never applied — for two reasons. First, byte-identical recovery: the
// live path logs a report only after reserving its user slot, so a
// record the live aggregator accepted is accepted on replay and one it
// would have rejected is rejected on replay. Second, idempotence: a
// snapshot is taken *after* the WAL rotates, so the segment replayed on
// top of it may contain records the snapshot already reflects; the
// duplicate/closed checks make re-applying them a no-op, which is what
// lets recovery compose a fuzzy snapshot with its overlapping segment.
//
// The replication follower applies the same record stream to a *live*
// replica back-end (backend.ApplyEvent); both appliers consume the
// typed events of DecodeEvent, so their acceptance rules can only drift
// if one of them diverges from this file's documented semantics.

// roundKey identifies one round of one campaign. Every piece of round
// state in the multi-campaign service keys on the pair: campaign 0 is
// the implicit legacy campaign, so pre-campaign WAL records and
// snapshots recover under {0, round} byte-identically.
type roundKey struct {
	Campaign uint32
	Round    uint64
}

// recovered accumulates state during recovery: the bulletin board, the
// per-round states keyed by (campaign, round), the opaque campaign
// directory, and the deployment-wide config/roster version counters.
type recovered struct {
	rounds        map[roundKey]*RoundState
	roster        map[int][]byte
	campaigns     map[uint32][]byte
	configVersion uint32
	rosterVersion uint32
}

// newRecovered seeds recovery from a loaded snapshot (nil for none).
func newRecovered(snap *snapshotData) *recovered {
	rec := &recovered{
		rounds:    make(map[roundKey]*RoundState),
		roster:    make(map[int][]byte),
		campaigns: make(map[uint32][]byte),
	}
	if snap != nil {
		for _, rs := range snap.rounds {
			rec.rounds[roundKey{rs.Campaign, rs.Round}] = rs
		}
		for u, k := range snap.roster {
			rec.roster[u] = k
		}
		for id, def := range snap.campaigns {
			rec.campaigns[id] = def
		}
		rec.configVersion, rec.rosterVersion = snap.configVersion, snap.rosterVersion
	}
	return rec
}

// bumpVersions raises the recovered version counters (never lowers:
// replay on top of a snapshot may revisit older bumps, and version
// counters only ever grow).
func (rec *recovered) bumpVersions(cv, rv uint32) {
	if cv > rec.configVersion {
		rec.configVersion = cv
	}
	if rv > rec.rosterVersion {
		rec.rosterVersion = rv
	}
}

// apply folds one decoded WAL record into the recovered state. A record
// that fails the live acceptance rules is skipped; a record whose body
// does not parse at all returns ErrBadRecord (the caller treats it like
// a corrupt record and ends the segment).
func (rec *recovered) apply(kind byte, body []byte) error {
	ev, err := DecodeEvent(kind, body)
	if err != nil {
		return err
	}
	rec.applyEvent(ev)
	return nil
}

// applyEvent folds one typed event into the recovered state, skipping
// whatever the live acceptance rules would have rejected.
func (rec *recovered) applyEvent(ev Event) {
	switch e := ev.(type) {
	case *RegisterEvent:
		rec.roster[e.User] = append([]byte(nil), e.PublicKey...)

	case *OpenEvent:
		rec.bumpVersions(e.ConfigVersion, e.RosterVersion)
		if _, ok := rec.rounds[roundKey{e.Campaign, e.Round}]; ok {
			return // round already open (snapshot overlap): idempotent
		}
		rec.rounds[roundKey{e.Campaign, e.Round}] = &RoundState{
			Campaign:      e.Campaign,
			Round:         e.Round,
			RosterSize:    e.RosterSize,
			ConfigVersion: e.ConfigVersion,
			RosterVersion: e.RosterVersion,
			D:             e.D,
			W:             e.W,
			Seed:          e.Seed,
			Keystream:     e.Keystream,
			Cells:         make([]uint64, e.D*e.W),
			Reported:      make([]bool, e.RosterSize),
			Adjusts:       make(map[int][]uint64),
		}

	case *ConfigEvent:
		rec.bumpVersions(e.ConfigVersion, e.RosterVersion)

	case *ReportEvent:
		rs, ok := rec.rounds[roundKey{e.Campaign, e.Round}]
		if !ok || rs.Closed {
			return // unknown or closed round: the live path rejects too
		}
		if e.User < 0 || e.User >= rs.RosterSize || rs.Reported[e.User] {
			return // out-of-roster or duplicate: skip, as live
		}
		if e.D != rs.D || e.W != rs.W || e.Seed != rs.Seed || e.Keystream != rs.Keystream {
			return // layout or blinding-suite mismatch: skip, as live
		}
		if e.ConfigVersion != 0 && rs.ConfigVersion != 0 && e.ConfigVersion != rs.ConfigVersion {
			return // stale config version: skip, as live (ErrIncompatibleConfig)
		}
		rs.Reported[e.User] = true
		rs.N += e.N
		raw := e.Cells
		for i := range rs.Cells {
			rs.Cells[i] += binary.LittleEndian.Uint64(raw[8*i:])
		}

	case *AdjustEvent:
		rs, ok := rec.rounds[roundKey{e.Campaign, e.Round}]
		if !ok || rs.Closed {
			return
		}
		if e.User < 0 || e.User >= rs.RosterSize || len(e.Cells) != 8*len(rs.Cells) {
			return
		}
		cells := make([]uint64, len(rs.Cells))
		vec.GetLE(cells, e.Cells)
		rs.Adjusts[e.User] = cells // overwrite, as the live map store does

	case *CloseEvent:
		if rs, ok := rec.rounds[roundKey{e.Campaign, e.Round}]; ok {
			rs.Closed = true
		}

	case *CampaignEvent:
		rec.campaigns[e.ID] = append([]byte(nil), e.Def...)
	}
}

// sortedRounds returns the recovered rounds ordered by (campaign,
// round), so recovery hands the back-end a deterministic sequence.
func (rec *recovered) sortedRounds() []*RoundState {
	out := make([]*RoundState, 0, len(rec.rounds))
	for _, rs := range rec.rounds {
		out = append(out, rs)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Campaign != out[j].Campaign {
			return out[i].Campaign < out[j].Campaign
		}
		return out[i].Round < out[j].Round
	})
	return out
}
