// Command eyewnder-sim runs the controlled simulation study of Section
// 7.2 and prints the paper's tables and series:
//
//	eyewnder-sim -table1          # print the simulation configuration
//	eyewnder-sim -fig3            # FN% vs frequency cap (Figure 3)
//	eyewnder-sim -fpstudy 30      # false-positive configurations (§7.2.2)
//	eyewnder-sim -ablate          # threshold/window/min-data ablations
//	eyewnder-sim -load 64         # stream a population's reports over one
//	                              # batched connection (wire load harness)
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"eyewnder/internal/adsim"
	"eyewnder/internal/experiments"
)

func main() {
	var (
		table1  = flag.Bool("table1", false, "print the Table 1 configuration")
		fig3    = flag.Bool("fig3", false, "run the Figure 3 sweep")
		fpstudy = flag.Int("fpstudy", 0, "run N false-positive configurations (§7.2.2)")
		ablate  = flag.Bool("ablate", false, "run the design-choice ablations")
		evasion = flag.Bool("evasion", false, "run the evasion trade-off study (§7.3.4)")
		users   = flag.Int("users", 0, "override user count (0 = Table 1)")
		reps    = flag.Int("reps", 1, "repetitions per Figure 3 point")

		load     = flag.Int("load", 0, "stream N users' blinded reports over one batched wire connection (the load harness)")
		loadRnds = flag.Int("load-rounds", 2, "rounds to run in -load mode")
		loadWin  = flag.Int("load-window", 0, "in-flight frame window in -load mode (0 = twice the server's ack batch)")
		loadAds  = flag.Int("load-ads", 50, "distinct ads per user per round in -load mode")
		loadDir  = flag.String("load-data-dir", "", "run the -load back-end on a durable round store in this directory")
		loadCamp = flag.Int("load-campaigns", 0, "in -load mode, provision N extra campaigns with distinct geometries and multiplex all of them (plus campaign 0) over the one batched connection")

		pipeline  = flag.Bool("pipeline", false, "run the end-to-end pipeline demo: adsim pages → detector → campaign mapper → blinded multi-campaign reporting, byte-matched against an unblinded oracle")
		pipeUsers = flag.Int("pipeline-users", 16, "population size in -pipeline mode")
		pipeWeeks = flag.Int("pipeline-weeks", 2, "simulated weeks (reporting rounds) in -pipeline mode")
		pipeCamps = flag.Int("pipeline-campaigns", 8, "counting campaigns to provision in -pipeline mode")
		pipeWin   = flag.Int("pipeline-window", 0, "in-flight frame window in -pipeline mode (0 = twice the server's ack batch)")

		churnN     = flag.Int("churn", 0, "replay a deterministic N-user population-lifecycle trace (the churn harness)")
		seed       = flag.Uint64("seed", 1, "master seed for -churn (same seed → identical trace and finalized counts)")
		churnRnds  = flag.Int("churn-rounds", 4, "rounds to replay in -churn mode")
		churnAds   = flag.Int("churn-ads", 3, "ad observations per reporter per round in -churn mode")
		churnIDs   = flag.Uint64("churn-idspace", 20000, "ad-ID space in -churn mode")
		churnWin   = flag.Int("churn-window", 256, "in-flight frame window in -churn mode")
		churnDark  = flag.Float64("churn-dark", 0.12, "per-round probability an active user goes dark (forces the adjustment round)")
		churnDrop  = flag.Float64("churn-drop", 0.03, "per-round probability an active user drops out permanently")
		churnJoin  = flag.Float64("churn-arrive", 0.05, "per-round probability an unregistered user joins")
		churnRereg = flag.Float64("churn-rereg", 0.02, "per-round probability an active user re-registers (version bump)")
		churnWait  = flag.Duration("churn-adjust-wait", 10*time.Second, "adjustment-share deadline for closing rounds in -churn mode")
		churnDir   = flag.String("churn-data-dir", "", "run the -churn back-end on a durable round store in this directory")
		churnArts  = flag.String("churn-artifacts", "", "directory for trace + oracle-diff artifacts on a -churn failure")
		churnCamp  = flag.Uint("churn-campaign", 0, "scope the whole -churn replay to this campaign ID (0 = the implicit legacy campaign)")

		scrape = flag.String("scrape", "", "with -load or -churn: serve the harness's admin endpoint (/metrics, /statusz, /healthz, pprof) on this address during the run and fold the /metrics counter deltas into the JSON summary line")
	)
	flag.Parse()

	base := adsim.DefaultConfig()
	// Keep campaigns ≫ users, as in the paper's live data (6743 ads for
	// 100 users), so per-ad audiences stay long-tailed.
	base.Campaigns = 4 * base.Users
	if *users > 0 {
		base.Users = *users
		base.Campaigns = 4 * *users
	}

	switch {
	case *churnN > 0:
		if err := runChurn(churnConfig{
			users: *churnN, rounds: *churnRnds, seed: *seed,
			ads: *churnAds, idSpace: *churnIDs, window: *churnWin,
			pDark: *churnDark, pDrop: *churnDrop,
			pArrive: *churnJoin, pRereg: *churnRereg,
			adjustWait: *churnWait, dataDir: *churnDir, artifacts: *churnArts,
			campaign: uint32(*churnCamp), scrape: *scrape,
		}); err != nil {
			log.Fatal(err)
		}

	case *pipeline:
		if err := runPipeline(pipelineConfig{
			users: *pipeUsers, weeks: *pipeWeeks,
			campaigns: *pipeCamps, window: *pipeWin,
			seed: int64(*seed),
		}); err != nil {
			log.Fatal(err)
		}

	case *load > 0:
		if err := runLoad(loadConfig{
			users: *load, rounds: *loadRnds, window: *loadWin,
			adsEach: *loadAds, campaigns: *loadCamp,
			dataDir: *loadDir, scrape: *scrape,
		}); err != nil {
			log.Fatal(err)
		}

	case *table1:
		fmt.Println("Table 1: Simulation configuration parameters")
		fmt.Printf("  %-28s %v\n", "Number of users", base.Users)
		fmt.Printf("  %-28s %v\n", "Number of websites", base.Sites)
		fmt.Printf("  %-28s %v\n", "Average user visits", base.AvgVisitsPerWeek)
		fmt.Printf("  %-28s %v\n", "Average ads per website", base.AdsPerSite)
		fmt.Printf("  %-28s %v\n", "Percentage of targeted ads", base.TargetedFraction)

	case *fig3:
		cfg := experiments.DefaultFig3Config()
		cfg.Base = base
		cfg.Repetitions = *reps
		pts, err := experiments.Fig3(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("Figure 3: False Negatives % vs. Frequency Cap")
		fmt.Printf("%-14s %12s %16s\n", "FrequencyCap", "Mean FN%", "Mean+Median FN%")
		for _, p := range pts {
			fmt.Printf("%-14d %12.1f %16.1f\n", p.FrequencyCap, p.FNMeanPct, p.FNMeanMedianPct)
		}

	case *fpstudy > 0:
		results, err := experiments.FPStudy(base, *fpstudy)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Section 7.2.2: false positives over %d configurations (paper bound: <2%%)\n", len(results))
		worst := 0.0
		for _, r := range results {
			fmt.Printf("  %-60s FP=%.2f%%  (%s)\n", r.Label, r.FPPct, r.Conf)
			if r.FPPct > worst {
				worst = r.FPPct
			}
		}
		fmt.Printf("worst configuration: %.2f%%\n", worst)

	case *evasion:
		pts, err := experiments.EvasionStudy(base, []int{1, 2, 4, 6, 8, 10, 12})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("Evading detection (§7.3.4): hiding requires giving up delivery")
		fmt.Printf("%-14s %12s %26s\n", "FrequencyCap", "Evasion %", "impressions/targeted pair")
		for _, p := range pts {
			fmt.Printf("%-14d %12.1f %26.2f\n", p.FrequencyCap, p.EvasionPct, p.ImpressionsPerTargetedPair)
		}

	case *ablate:
		est, err := experiments.AblateEstimators(base)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("Ablation: threshold estimators (§4.2 / §7.2.3)")
		for _, a := range est {
			fmt.Printf("  %-14s %s\n", a.Estimator, a.Conf)
		}
		win, err := experiments.AblateWindow(base, []int{1, 3, 7})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("Ablation: observation window (days)")
		for _, a := range win {
			fmt.Printf("  %-14d %s\n", a.Days, a.Conf)
		}
		md, err := experiments.AblateMinDomains(base, []int{2, 4, 8})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("Ablation: minimum-data rule (domains)")
		for _, a := range md {
			fmt.Printf("  %-14d %s\n", a.MinDomains, a.Conf)
		}
		sk, err := experiments.AblateSketchGeometry(base, [][2]float64{
			{0.1, 0.1}, {0.01, 0.01}, {0.001, 0.001},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("Ablation: sketch geometry")
		for _, a := range sk {
			fmt.Printf("  ε=%-7g δ=%-7g size=%8.1fKB  mean-overestimate=%.4f\n",
				a.Epsilon, a.Delta, a.SizeKB, a.MeanOverestimate)
		}

	default:
		flag.Usage()
	}
}
