package eyewnder

import (
	"fmt"
	"testing"
	"time"
)

func TestNewSystemValidation(t *testing.T) {
	if _, err := NewSystem(SystemConfig{Users: 1}); err == nil {
		t.Fatal("single-user system accepted (blinding needs peers)")
	}
	if _, err := NewSystem(SystemConfig{Users: 2, RSABits: 512}); err == nil {
		t.Fatal("tiny RSA key accepted")
	}
}

func TestSystemEndToEnd(t *testing.T) {
	params := Params{Epsilon: 0.01, Delta: 0.01, IDSpace: 5000, Suite: DefaultParams().Suite}
	sys, err := NewSystem(SystemConfig{Users: 4, Params: &params, RSABits: 1024})
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Date(2019, 3, 4, 10, 0, 0, 0, time.UTC)
	// A chasing ad follows user 0 across 6 domains; a broad ad reaches
	// everyone everywhere.
	page := func(chasing bool, site int) string {
		html := `<html><body><div class="ad-slot"><a href="https://shopX.example/broad/1"><img src="https://ads.adx0.example/creative/1"></a></div>`
		if chasing {
			html += `<div class="ad-slot"><a href="https://shopY.example/follow/2"><img src="https://ads.adx1.example/creative/2"></a></div>`
		}
		return html + "</body></html>"
	}
	for site := 0; site < 6; site++ {
		domain := fmt.Sprintf("www.site-%d.example", site)
		for i, ext := range sys.Extensions {
			if _, err := ext.VisitPage(domain, page(i == 0, site), t0.Add(time.Duration(site)*time.Hour)); err != nil {
				t.Fatal(err)
			}
		}
	}
	const round = 1
	if err := sys.SubmitAllReports(round); err != nil {
		t.Fatal(err)
	}
	th, ads, err := sys.CloseRound(round)
	if err != nil {
		t.Fatal(err)
	}
	if ads < 2 {
		t.Fatalf("distinct ads = %d", ads)
	}
	if th <= 0 {
		t.Fatalf("Users_th = %v", th)
	}
	now := t0.Add(7 * time.Hour)
	v, err := sys.Extensions[0].AuditAd("https://shopY.example/follow/2", round, now)
	if err != nil {
		t.Fatal(err)
	}
	if v.Class != Targeted {
		t.Fatalf("chasing ad = %v (%+v), want targeted", v.Class, v)
	}
	v, err = sys.Extensions[0].AuditAd("https://shopX.example/broad/1", round, now)
	if err != nil {
		t.Fatal(err)
	}
	if v.Class != NonTargeted {
		t.Fatalf("broad ad = %v (%+v), want non-targeted", v.Class, v)
	}
}

func TestSystemServeTCP(t *testing.T) {
	sys, err := NewSystem(SystemConfig{Users: 2, RSABits: 1024})
	if err != nil {
		t.Fatal(err)
	}
	be, op, err := sys.ServeTCP("127.0.0.1:0", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer be.Close()
	defer op.Close()
	if be.Addr() == "" || op.Addr() == "" {
		t.Fatal("empty listen addresses")
	}
}
