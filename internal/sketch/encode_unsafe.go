//go:build amd64 || arm64 || 386 || arm || riscv64 || loong64 || mipsle || mips64le || ppc64le || wasm

package sketch

import "unsafe"

// On little-endian architectures the in-memory layout of a []uint64 is
// exactly its little-endian wire serialization, so the cell block of
// MarshalBinary/UnmarshalBinary is a single memmove instead of a
// per-cell encode loop.

func putCellsLE(dst []byte, src []uint64) {
	if len(src) == 0 {
		return
	}
	copy(dst, unsafe.Slice((*byte)(unsafe.Pointer(&src[0])), 8*len(src)))
}

func getCellsLE(dst []uint64, src []byte) {
	if len(dst) == 0 {
		return
	}
	copy(unsafe.Slice((*byte)(unsafe.Pointer(&dst[0])), 8*len(dst)), src)
}
